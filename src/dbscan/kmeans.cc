#include "dbscan/kmeans.h"

#include <cmath>
#include <limits>

namespace ppdbscan {

namespace {

double SquaredDistanceToCentroid(const std::vector<int64_t>& point,
                                 const std::vector<double>& centroid) {
  double sum = 0;
  for (size_t d = 0; d < point.size(); ++d) {
    double diff = static_cast<double>(point[d]) - centroid[d];
    sum += diff * diff;
  }
  return sum;
}

/// k-means++ seeding: first centroid uniform, then each next centroid
/// sampled proportionally to the squared distance from the nearest chosen
/// one.
std::vector<std::vector<double>> SeedCentroids(const Dataset& dataset,
                                               size_t k, SecureRng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  size_t first = rng.UniformU64(dataset.size());
  centroids.emplace_back(dataset.point(first).begin(),
                         dataset.point(first).end());
  std::vector<double> dist2(dataset.size());
  while (centroids.size() < k) {
    double total = 0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        best = std::min(best, SquaredDistanceToCentroid(dataset.point(i), c));
      }
      dist2[i] = best;
      total += best;
    }
    size_t chosen = 0;
    if (total > 0) {
      double target = rng.NextDouble() * total;
      double acc = 0;
      for (size_t i = 0; i < dataset.size(); ++i) {
        acc += dist2[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.UniformU64(dataset.size());  // all points coincide
    }
    centroids.emplace_back(dataset.point(chosen).begin(),
                           dataset.point(chosen).end());
  }
  return centroids;
}

}  // namespace

KmeansResult RunKmeans(const Dataset& dataset, const KmeansParams& params,
                       SecureRng& rng) {
  KmeansResult result;
  if (dataset.empty() || params.k == 0) return result;
  const size_t k = std::min(params.k, dataset.size());
  result.centroids = SeedCentroids(dataset, k, rng);
  result.labels.assign(dataset.size(), 0);

  for (size_t iter = 0; iter < params.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (size_t i = 0; i < dataset.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d = SquaredDistanceToCentroid(dataset.point(i),
                                             result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int32_t>(c);
        }
      }
      if (result.labels[i] != best_c) {
        result.labels[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update step. Empty clusters keep their previous centroid (a
    // well-defined, standard choice).
    std::vector<std::vector<double>> sums(
        k, std::vector<double>(dataset.dims(), 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < dataset.size(); ++i) {
      size_t c = static_cast<size_t>(result.labels[i]);
      ++counts[c];
      for (size_t d = 0; d < dataset.dims(); ++d) {
        sums[c][d] += static_cast<double>(dataset.point(i)[d]);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (size_t d = 0; d < dataset.dims(); ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    result.inertia += SquaredDistanceToCentroid(
        dataset.point(i),
        result.centroids[static_cast<size_t>(result.labels[i])]);
  }
  return result;
}

}  // namespace ppdbscan
