#include "net/mux.h"

#include <chrono>
#include <utility>

namespace ppdbscan {

namespace {

constexpr size_t kStreamIdBytes = 4;

uint32_t ReadStreamId(const std::vector<uint8_t>& frame) {
  return static_cast<uint32_t>(frame[0]) << 24 |
         static_cast<uint32_t>(frame[1]) << 16 |
         static_cast<uint32_t>(frame[2]) << 8 | frame[3];
}

}  // namespace

bool ChannelMux::Shared::IsRetiredLocked(uint32_t id) const {
  return id < retired_floor || retired.count(id) > 0;
}

void ChannelMux::Shared::RetireLocked(uint32_t id) {
  if (id < retired_floor) return;
  retired.insert(id);
  while (retired.size() > max_retired) {
    auto smallest = retired.begin();
    retired_floor = *smallest + 1;
    retired.erase(smallest);
  }
}

/// One logical stream endpoint. Holds the mux's shared state alive so a
/// job channel handed to a worker thread stays valid (and fails cleanly)
/// even if the mux is torn down first.
class ChannelMux::Stream : public Channel {
 public:
  Stream(std::shared_ptr<Shared> shared, uint32_t id)
      : shared_(std::move(shared)), id_(id) {}

  ~Stream() override { Close(); }

  void Close() override {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->RetireLocked(id_);
    shared_->streams.erase(id_);
    shared_->cv.notify_all();
  }

 protected:
  Status SendImpl(const std::vector<uint8_t>& frame) override {
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      if (!shared_->terminal.ok()) return shared_->terminal;
      // An open stream always has its map entry until Close — absence
      // means this stream was closed (the watermark never covers it).
      if (shared_->streams.count(id_) == 0) {
        return Status::FailedPrecondition("mux stream closed");
      }
    }
    std::vector<uint8_t> wire;
    wire.reserve(kStreamIdBytes + frame.size());
    wire.push_back(static_cast<uint8_t>(id_ >> 24));
    wire.push_back(static_cast<uint8_t>(id_ >> 16));
    wire.push_back(static_cast<uint8_t>(id_ >> 8));
    wire.push_back(static_cast<uint8_t>(id_));
    wire.insert(wire.end(), frame.begin(), frame.end());
    std::lock_guard<std::mutex> send_lock(shared_->send_mu);
    return shared_->base->Send(wire);
  }

  Result<std::vector<uint8_t>> RecvImpl() override {
    const int deadline_ms = recv_deadline_ms();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(deadline_ms < 0 ? 0 : deadline_ms);
    std::unique_lock<std::mutex> lock(shared_->mu);
    while (true) {
      auto it = shared_->streams.find(id_);
      if (it == shared_->streams.end()) {
        // Close() ran (possibly from another thread).
        return Status::Unavailable("mux stream closed");
      }
      if (!it->second.queue.empty()) {
        std::vector<uint8_t> frame = std::move(it->second.queue.front());
        it->second.queue.pop_front();
        return frame;
      }
      // Drain queued frames before surfacing the terminal status: a job
      // whose last round was already received must be able to finish.
      if (!shared_->terminal.ok()) return shared_->terminal;
      if (deadline_ms < 0) {
        shared_->cv.wait(lock);
      } else if (shared_->cv.wait_until(lock, deadline) ==
                 std::cv_status::timeout) {
        return Status::DeadlineExceeded("recv deadline of " +
                                        std::to_string(deadline_ms) +
                                        "ms exceeded on mux stream " +
                                        std::to_string(id_));
      }
    }
  }

 private:
  std::shared_ptr<Shared> shared_;
  uint32_t id_;
};

ChannelMux::ChannelMux(Channel& base, size_t max_retired)
    : shared_(std::make_shared<Shared>()) {
  shared_->base = &base;
  shared_->max_retired = max_retired > 0 ? max_retired : 1;
  reader_ = std::thread([this] { ReaderLoop(); });
}

ChannelMux::~ChannelMux() {
  Shutdown();
  if (reader_.joinable()) reader_.join();
}

void ChannelMux::ReaderLoop() {
  while (true) {
    Result<std::vector<uint8_t>> frame = shared_->base->Recv();
    std::unique_lock<std::mutex> lock(shared_->mu);
    if (!frame.ok()) {
      if (shared_->terminal.ok()) {
        shared_->terminal =
            shared_->shutdown
                ? Status::Unavailable("mux shut down")
                : frame.status();
      }
      shared_->cv.notify_all();
      return;
    }
    if (frame->size() < kStreamIdBytes) {
      shared_->terminal = Status::DataLoss("mux frame shorter than its id");
      shared_->cv.notify_all();
      return;
    }
    const uint32_t id = ReadStreamId(*frame);
    // Route to live (open or pending) streams first: the watermark only
    // ever covers ids with no live stream, so an open stream keeps
    // receiving even once the floor passes its id.
    auto it = shared_->streams.find(id);
    if (it == shared_->streams.end()) {
      if (shared_->IsRetiredLocked(id)) continue;  // late frame, drop
      // Auto-creates the pending entry when the local stream is not open
      // yet — the peer may legitimately race ahead into a job's first
      // round.
      it = shared_->streams.emplace(id, StreamState()).first;
    }
    it->second.queue.emplace_back(frame->begin() + kStreamIdBytes,
                                  frame->end());
    shared_->cv.notify_all();
  }
}

Result<std::unique_ptr<Channel>> ChannelMux::OpenStream(uint32_t id) {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (!shared_->terminal.ok()) return shared_->terminal;
    if (shared_->IsRetiredLocked(id)) {
      return Status::FailedPrecondition(
          "mux stream id " + std::to_string(id) + " was already retired");
    }
    StreamState& state = shared_->streams[id];
    if (state.opened) {
      return Status::FailedPrecondition(
          "mux stream id " + std::to_string(id) + " is already open");
    }
    state.opened = true;
  }
  return std::unique_ptr<Channel>(new Stream(shared_, id));
}

void ChannelMux::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->shutdown) return;
    shared_->shutdown = true;
    shared_->cv.notify_all();
  }
  // Closing the base unblocks the reader's pending Recv; the reader then
  // records the terminal status and wakes every stream.
  shared_->base->Close();
}

Status ChannelMux::status() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->terminal;
}

size_t ChannelMux::retired_count() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->retired.size();
}

uint32_t ChannelMux::retired_floor() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->retired_floor;
}

}  // namespace ppdbscan
