#include "net/channel.h"

namespace ppdbscan {

Status Channel::Send(const std::vector<uint8_t>& frame) {
  Status s = SendImpl(frame);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_sent += frame.size();
    stats_.frames_sent += 1;
    if (last_dir_ != LastDir::kSend) {
      stats_.rounds += 1;
      last_dir_ = LastDir::kSend;
    }
  }
  return s;
}

Result<std::vector<uint8_t>> Channel::Recv() {
  Result<std::vector<uint8_t>> frame = RecvImpl();
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (!frame.ok() && frame.status().code() == StatusCode::kDeadlineExceeded) {
    stats_.deadline_trips += 1;
  }
  if (frame.ok()) {
    stats_.bytes_received += frame->size();
    stats_.frames_received += 1;
    if (last_dir_ != LastDir::kRecv) {
      stats_.rounds += 1;
      last_dir_ = LastDir::kRecv;
    }
  }
  return frame;
}

}  // namespace ppdbscan
