#include "net/socket_channel.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ppdbscan {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetNonBlocking(int fd, bool nonblocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  fcntl(fd, F_SETFL, flags);
}

}  // namespace

Result<SocketListener> SocketListener::Bind(uint16_t port, int backlog) {
  if (backlog < 1) {
    return Status::InvalidArgument("listener backlog must be >= 1");
  }
  int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Errno("socket");
  int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(listener);
    return Errno("bind");
  }
  if (listen(listener, backlog) < 0) {
    close(listener);
    return Errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listener, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) < 0) {
    close(listener);
    return Errno("getsockname");
  }
  return SocketListener(listener, ntohs(bound.sin_port));
}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

SocketListener& SocketListener::operator=(SocketListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) close(fd_);
}

void SocketListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<SocketChannel>> SocketListener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("listener closed");
  int fd = -1;
  if (timeout_ms < 0) {
    // A previous timed Accept may have left the socket non-blocking.
    SetNonBlocking(fd_, false);
    while (true) {
      fd = accept(fd_, nullptr, nullptr);
      if (fd < 0 && (errno == EINTR || errno == ECONNABORTED)) continue;
      break;
    }
  } else {
    // Non-blocking poll+accept loop against a deadline: a queued
    // connection that is reset before we reach accept() (peer crashed
    // between connect and our wakeup) surfaces as EAGAIN and we keep
    // waiting for the remainder of the budget instead of blocking forever.
    // Every exit leaves the listening socket open — a mesh party accepts
    // its next peer off the same listener, timeout or not.
    SetNonBlocking(fd_, true);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return Status::Unavailable("accept timed out");
      }
      pollfd pending{fd_, POLLIN, 0};
      int ready = poll(&pending, 1, static_cast<int>(remaining.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return Errno("poll");
      if (ready == 0) continue;  // loop re-checks the deadline
      fd = accept(fd_, nullptr, nullptr);
      if (fd < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                     errno == ECONNABORTED || errno == EINTR)) {
        continue;
      }
      break;
    }
  }
  if (fd < 0) return Errno("accept");
  // Accepted sockets must be blocking regardless of the listener's flags
  // (inheritance is platform-dependent).
  SetNonBlocking(fd, false);
  SetNoDelay(fd);
  return std::unique_ptr<SocketChannel>(new SocketChannel(fd));
}

Result<std::unique_ptr<SocketChannel>> SocketChannel::Listen(uint16_t port) {
  Result<SocketListener> listener = SocketListener::Bind(port);
  PPD_RETURN_IF_ERROR(listener.status());
  return listener->Accept();
}

Result<std::unique_ptr<SocketChannel>> SocketChannel::Connect(
    const std::string& host, uint16_t port, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("invalid IPv4 address: " + host);
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (true) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      SetNoDelay(fd);
      return std::unique_ptr<SocketChannel>(new SocketChannel(fd));
    }
    close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable("connect timed out");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

SocketChannel::~SocketChannel() {
  // Destruction means no other thread still uses this channel, so this is
  // the one place the descriptor may actually be released (see Close()).
  if (fd_ >= 0) {
    shutdown(fd_, SHUT_RDWR);
    close(fd_);
    fd_ = -1;
  }
}

void SocketChannel::Close() {
  // Shutdown only — never close(2) here. Close() is routinely called from
  // a thread other than the one blocked in read(2) on this socket (the mux
  // tears down its base channel to wake its reader; a heal drops a link a
  // job thread is still parked on). shutdown both wakes those readers and
  // sends FIN, while leaving the descriptor allocated so the kernel cannot
  // hand the same fd number to a concurrent accept/connect mid-read. The
  // fd is released in the destructor, once no user can remain.
  if (fd_ >= 0 && !closed_.exchange(true)) shutdown(fd_, SHUT_RDWR);
}

Status SocketChannel::WriteAll(const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a write to a peer that crashed mid-protocol must
    // surface as EPIPE -> kUnavailable, not raise SIGPIPE and kill the
    // whole process (a daemon serving many jobs dies with its first dead
    // peer otherwise).
    ssize_t n = send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status SocketChannel::ReadAll(
    uint8_t* data, size_t len, int budget_ms,
    const std::chrono::steady_clock::time_point& deadline) {
  size_t got = 0;
  while (got < len) {
    if (budget_ms >= 0) {
      // Poll-gate the blocking read against the remaining Recv budget: a
      // peer that goes silent mid-frame surfaces as kDeadlineExceeded
      // instead of wedging this thread in read(2) forever.
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("recv deadline of " +
                                        std::to_string(budget_ms) +
                                        "ms exceeded");
      }
      pollfd readable{fd_, POLLIN, 0};
      int ready = poll(&readable, 1, static_cast<int>(remaining.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return Errno("poll");
      if (ready == 0) continue;  // loop re-checks the deadline
    }
    ssize_t n = read(fd_, data + got, len - got);
    if (n == 0) return Status::Unavailable("peer closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status SocketChannel::SendImpl(const std::vector<uint8_t>& frame) {
  if (fd_ < 0 || closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("channel closed");
  }
  // Same bound the receiver checks: a frame that does not fit the 4-byte
  // header would silently truncate its length and desync the stream.
  if (frame.size() > kMaxFrame) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(frame.size()) +
        " bytes exceeds the " + std::to_string(kMaxFrame) +
        "-byte wire limit");
  }
  uint8_t header[4] = {
      static_cast<uint8_t>(frame.size() >> 24),
      static_cast<uint8_t>(frame.size() >> 16),
      static_cast<uint8_t>(frame.size() >> 8),
      static_cast<uint8_t>(frame.size()),
  };
  PPD_RETURN_IF_ERROR(WriteAll(header, 4));
  return WriteAll(frame.data(), frame.size());
}

Result<std::vector<uint8_t>> SocketChannel::RecvImpl() {
  if (fd_ < 0 || closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("channel closed");
  }
  // One budget for the whole frame: header and payload reads share it, so
  // a peer that stalls after sending half a frame still trips the deadline.
  const int budget_ms = recv_deadline_ms();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms < 0 ? 0 : budget_ms);
  uint8_t header[4];
  PPD_RETURN_IF_ERROR(ReadAll(header, 4, budget_ms, deadline));
  uint32_t len = static_cast<uint32_t>(header[0]) << 24 |
                 static_cast<uint32_t>(header[1]) << 16 |
                 static_cast<uint32_t>(header[2]) << 8 | header[3];
  if (len > kMaxFrame) return Status::DataLoss("oversized frame");
  std::vector<uint8_t> frame(len);
  PPD_RETURN_IF_ERROR(ReadAll(frame.data(), len, budget_ms, deadline));
  return frame;
}

}  // namespace ppdbscan
