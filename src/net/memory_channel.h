#ifndef PPDBSCAN_NET_MEMORY_CHANNEL_H_
#define PPDBSCAN_NET_MEMORY_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "net/channel.h"

namespace ppdbscan {

/// In-process channel pair for running both protocol parties on two threads
/// of one process. Frames are moved through two mutex-protected queues;
/// Recv blocks on a condition variable. This is the default transport for
/// tests and benchmarks: it has zero kernel overhead, so byte counters
/// measure protocol traffic exactly.
class MemoryChannel : public Channel {
 public:
  /// Creates the two connected endpoints (first = "Alice side", second =
  /// "Bob side"; the labels are arbitrary).
  static std::pair<std::unique_ptr<MemoryChannel>,
                   std::unique_ptr<MemoryChannel>>
  CreatePair();

  void Close() override;

 protected:
  Status SendImpl(const std::vector<uint8_t>& frame) override;
  Result<std::vector<uint8_t>> RecvImpl() override;

 private:
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<uint8_t>> queue[2];  // queue[i]: frames for end i
    bool closed[2] = {false, false};            // closed[i]: end i sent Close
  };

  MemoryChannel(std::shared_ptr<Shared> shared, int side)
      : shared_(std::move(shared)), side_(side) {}

  std::shared_ptr<Shared> shared_;
  int side_;  // 0 or 1
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_MEMORY_CHANNEL_H_
