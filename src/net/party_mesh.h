#ifndef PPDBSCAN_NET_PARTY_MESH_H_
#define PPDBSCAN_NET_PARTY_MESH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/socket_channel.h"

namespace ppdbscan {

/// Where one mesh party listens. `endpoints[j]` is party j's listen
/// address; entry 0 is unused (party 0 never listens — see the schedule
/// below) but kept so endpoint lists index naturally by party.
struct MeshEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct PartyMeshOptions {
  /// Per-link connect retry budget: connects keep retrying until the
  /// target's listener is up or this expires, so the P processes can be
  /// started in any order.
  int connect_timeout_ms = 15000;
  /// Per-link accept budget (kUnavailable on expiry; the listener stays
  /// open).
  int accept_timeout_ms = 20000;
  /// The listen backlog is max(min_backlog, parties): all lower-indexed
  /// peers may connect before this party reaches its first Accept, and
  /// their connections must queue instead of being refused.
  int min_backlog = 8;
};

/// Full TCP mesh between P party processes — the two-party tcp_parties
/// pattern generalized to N machines.
///
/// The per-pair schedule is deterministic so every process can compute it
/// from (index, P) alone: party i LISTENS for every j < i and CONNECTS to
/// every j > i — each pair (i, j), i < j, is one TCP connection initiated
/// by the lower index. Every party first binds its listener, then runs its
/// connects (so every connect target is already bound or soon will be;
/// the retry loop absorbs start-order races), then accepts its i peers.
/// Accepted connections identify themselves with a hello frame (magic,
/// version, party count, sender index) answered by an ack, so arrival
/// order never mis-slots a link and a stray client fails the handshake
/// descriptively instead of desyncing the mesh.
///
/// The listener is retained for the mesh's lifetime (a daemon can
/// re-accept a returning peer); handshake traffic is excluded from the
/// per-link stats, matching the paper's per-invocation accounting.
class PartyMesh {
 public:
  /// Establishes party `index`'s side of the full mesh. All P processes
  /// must call Establish with the same endpoint list concurrently.
  /// Listens on endpoints[index].port (must be a real port for index > 0;
  /// use EstablishWithListener for ephemeral kernel-assigned ports).
  static Result<PartyMesh> Establish(
      const std::vector<MeshEndpoint>& endpoints, size_t index,
      const PartyMeshOptions& options = {});

  /// Variant taking a pre-bound listener, for ephemeral-port workflows:
  /// bind port 0 first, learn the port, publish it to the peers, then
  /// establish. Required for index > 0; ignored for party 0.
  static Result<PartyMesh> EstablishWithListener(
      std::optional<SocketListener> listener,
      const std::vector<MeshEndpoint>& endpoints, size_t index,
      const PartyMeshOptions& options = {});

  PartyMesh(PartyMesh&&) = default;
  PartyMesh& operator=(PartyMesh&&) = default;
  PartyMesh(const PartyMesh&) = delete;
  PartyMesh& operator=(const PartyMesh&) = delete;

  size_t index() const { return index_; }
  size_t parties() const { return channels_.size(); }

  /// The channel to party `peer` (null at this party's own index).
  SocketChannel* link(size_t peer) const {
    return peer < channels_.size() ? channels_[peer].get() : nullptr;
  }

  /// All P link slots with null at this party's own index — the exact
  /// shape PartyRuntime::ConnectMesh takes.
  std::vector<Channel*> links() const;

  /// This party's retained listener (null for party 0 or after Close).
  SocketListener* listener() {
    return listener_.has_value() ? &*listener_ : nullptr;
  }

  /// Re-establishes the single link to `peer` after a TCP failure, using
  /// the same identification handshake as Establish and the original
  /// schedule (the lower index connects, the higher accepts off its
  /// retained listener) — so both ends can call this concurrently without
  /// coordination, and a relaunched peer running a full Establish is
  /// indistinguishable from one healing a single link. The old channel is
  /// closed and dropped first (unblocking a peer mid-Recv), then the whole
  /// retry-with-backoff budget is bounded by `timeout_ms`. On success the
  /// new link's stats are reset, exactly like a fresh Establish; on
  /// failure the slot stays empty (link(peer) == nullptr).
  Status ReestablishLink(size_t peer, int timeout_ms);

  /// Closes every link and the listener. Idempotent.
  void CloseAll();

 private:
  PartyMesh() = default;

  size_t index_ = 0;
  std::vector<std::unique_ptr<SocketChannel>> channels_;  // null at index_
  std::optional<SocketListener> listener_;
  // Retained from Establish so ReestablishLink can redial the same fleet.
  std::vector<MeshEndpoint> endpoints_;
  PartyMeshOptions options_;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_PARTY_MESH_H_
