#include "net/fault.h"

#include <algorithm>
#include <vector>

namespace ppdbscan {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "NONE";
    case FaultKind::kDropLink:
      return "DROP_LINK";
    case FaultKind::kStall:
      return "STALL";
    case FaultKind::kCorruptFrame:
      return "CORRUPT_FRAME";
    case FaultKind::kTruncateFrame:
      return "TRUNCATE_FRAME";
    case FaultKind::kSendError:
      return "SEND_ERROR";
  }
  return "UNKNOWN";
}

bool FaultInjectingChannel::fault_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

Status FaultInjectingChannel::SendImpl(const std::vector<uint8_t>& frame) {
  FaultKind action = FaultKind::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dropped_) return Status::Unavailable("fault injection: link dropped");
    if (fired_ && schedule_.kind == FaultKind::kStall) {
      return Status::Ok();  // persistent stall swallows every later send
    }
    if (!fired_ && schedule_.kind != FaultKind::kNone &&
        frames_ >= schedule_.after_frames) {
      fired_ = true;
      action = schedule_.kind;
      if (action == FaultKind::kDropLink || action == FaultKind::kSendError) {
        dropped_ = true;
      }
    } else {
      ++frames_;
    }
  }
  switch (action) {
    case FaultKind::kNone:
      return inner_->Send(frame);
    case FaultKind::kStall:
      return Status::Ok();  // swallowed: the peer waits for a frame that
                            // never comes and must trip its recv deadline
    case FaultKind::kDropLink:
      inner_->Close();
      return Status::Unavailable("fault injection: link dropped");
    case FaultKind::kSendError:
      inner_->Close();
      return Status::Unavailable("fault injection: injected send error");
    case FaultKind::kCorruptFrame: {
      // Flip a high bit in the frame's leading bytes — the message tag or
      // mux stream id — so the peer sees an unknown tag or a mis-routed
      // stream. Under the semi-honest model payloads carry no MACs, so
      // corrupting deeper bytes could yield silently wrong labels; the
      // chaos suite requires every fault to surface as a *named* error.
      std::vector<uint8_t> bad = frame;
      if (!bad.empty()) {
        bad[schedule_.seed % std::min<size_t>(2, bad.size())] ^= 0x80;
      }
      return inner_->Send(bad);
    }
    case FaultKind::kTruncateFrame: {
      std::vector<uint8_t> cut(frame.begin(), frame.begin() + frame.size() / 2);
      return inner_->Send(cut);
    }
  }
  return Status::Internal("unreachable fault kind");
}

Result<std::vector<uint8_t>> FaultInjectingChannel::RecvImpl() {
  while (true) {
    bool stalling = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const bool due = !fired_ && schedule_.kind != FaultKind::kNone &&
                       frames_ >= schedule_.after_frames;
      // Only link-level kinds affect the receive path; the frame-mangling
      // kinds fire on the sending side.
      if (due && (schedule_.kind == FaultKind::kDropLink ||
                  schedule_.kind == FaultKind::kStall)) {
        fired_ = true;
        if (schedule_.kind == FaultKind::kDropLink) dropped_ = true;
      }
      if (dropped_) {
        inner_->Close();
        return Status::Unavailable("fault injection: link dropped");
      }
      stalling = fired_ && schedule_.kind == FaultKind::kStall;
    }
    Result<std::vector<uint8_t>> frame = inner_->Recv();
    if (!stalling) {
      if (frame.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++frames_;
      }
      return frame;
    }
    // Stalling: discard whatever arrived and keep waiting. Only the recv
    // deadline (forwarded to the inner channel) or a link error gets the
    // caller out — exactly how a silent peer looks from the outside.
    if (!frame.ok()) return frame.status();
  }
}

}  // namespace ppdbscan
