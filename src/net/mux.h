#ifndef PPDBSCAN_NET_MUX_H_
#define PPDBSCAN_NET_MUX_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "net/channel.h"

namespace ppdbscan {

/// Multiplexes many logical frame streams over one established Channel by
/// prefixing every wire frame with a 4-byte big-endian stream id — the
/// job-id framing a serve daemon uses to run many ClusteringJobs over one
/// long-lived mesh link without tearing the TCP connection down between
/// jobs (or re-running the key exchange that rode on it).
///
/// One background reader thread drains the base channel and routes each
/// frame to its stream's queue. Frames for streams not opened yet are
/// buffered (the peer may start a job's rounds before this side's job task
/// has opened its stream); frames for retired (closed) streams are
/// dropped. When the base channel fails — peer crash, peer close, local
/// Shutdown — every open stream's pending and future Recvs fail with that
/// status, so a daemon's in-flight jobs all observe kUnavailable instead
/// of hanging.
///
/// Stream channels are full Channel implementations: their own stats count
/// the logical payload only (no mux overhead), so per-job traffic
/// accounting over a mux matches the same job over a dedicated channel
/// byte for byte. Sends from different streams may interleave (a send
/// mutex serializes access to the base channel); frame order within one
/// stream is preserved in both directions.
class ChannelMux {
 public:
  /// Default bound on the retired-stream-id set (see `max_retired` below).
  static constexpr size_t kDefaultMaxRetired = 1024;

  /// Starts the reader thread over `base`, which must outlive the mux.
  /// `max_retired` bounds the retired-id set: a long-lived daemon retires
  /// one id per completed job, so the set is capped by promoting the
  /// smallest retired ids into a watermark — every id below
  /// `retired_floor()` counts as retired without a per-id entry. Ids must
  /// therefore be opened in roughly increasing order (job ids are): an id
  /// more than `max_retired` retirements behind the frontier can no longer
  /// be opened, and its late frames are dropped, exactly as if it had been
  /// retired individually. Open and pending streams are never affected by
  /// the watermark (routing checks live streams first).
  explicit ChannelMux(Channel& base, size_t max_retired = kDefaultMaxRetired);

  /// Shuts down (closing the base channel) and joins the reader.
  ~ChannelMux();

  ChannelMux(const ChannelMux&) = delete;
  ChannelMux& operator=(const ChannelMux&) = delete;

  /// Opens logical stream `id`. Each id can be opened once per mux
  /// lifetime (ids are job ids — unique by construction); frames that
  /// arrived for `id` before the open are already waiting in its queue.
  /// The returned channel may outlive the mux object itself, but fails
  /// kUnavailable once the mux shut down.
  Result<std::unique_ptr<Channel>> OpenStream(uint32_t id);

  /// Fails every stream with kUnavailable, closes the base channel, and
  /// stops the reader. Idempotent; called by the destructor.
  void Shutdown();

  /// The reader's terminal status: Ok while the mux is live, the base
  /// channel's failure afterwards.
  Status status() const;

  /// Retired ids tracked individually right now (always <= max_retired).
  size_t retired_count() const;
  /// The watermark: every stream id below it is retired. Advances only
  /// when the retired set overflows its cap.
  uint32_t retired_floor() const;

 private:
  struct StreamState {
    std::deque<std::vector<uint8_t>> queue;
    bool opened = false;
  };

  /// State shared between the mux, its reader thread, and every stream
  /// channel (streams may outlive the mux).
  struct Shared {
    Channel* base = nullptr;
    std::mutex send_mu;  // serializes base->Send across streams

    std::mutex mu;  // guards everything below
    std::condition_variable cv;
    std::map<uint32_t, StreamState> streams;
    /// Closed stream ids above the floor: late frames are dropped. Bounded
    /// by max_retired; overflow promotes the smallest ids into the floor.
    std::set<uint32_t> retired;
    uint32_t retired_floor = 0;  // ids below this are retired wholesale
    size_t max_retired = kDefaultMaxRetired;
    Status terminal;             // non-OK once the reader stopped
    bool shutdown = false;

    /// Both require `mu` to be held by the caller.
    bool IsRetiredLocked(uint32_t id) const;
    void RetireLocked(uint32_t id);
  };

  class Stream;

  void ReaderLoop();

  std::shared_ptr<Shared> shared_;
  std::thread reader_;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_MUX_H_
