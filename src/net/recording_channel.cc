#include "net/recording_channel.h"

namespace ppdbscan {

std::vector<uint8_t> Transcript::ReceivedBytes() const {
  std::vector<uint8_t> out;
  for (const TranscriptFrame& frame : frames) {
    if (frame.direction == TranscriptFrame::Direction::kReceived) {
      out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    }
  }
  return out;
}

size_t Transcript::sent_count() const {
  size_t n = 0;
  for (const TranscriptFrame& frame : frames) {
    if (frame.direction == TranscriptFrame::Direction::kSent) ++n;
  }
  return n;
}

size_t Transcript::received_count() const {
  return frames.size() - sent_count();
}

void RecordingChannel::Close() { inner_->Close(); }

Status RecordingChannel::SendImpl(const std::vector<uint8_t>& frame) {
  // Record after a successful send so the transcript reflects delivered
  // frames only.
  Status status = inner_->Send(frame);
  if (status.ok()) {
    transcript_.frames.push_back(
        TranscriptFrame{TranscriptFrame::Direction::kSent, frame});
  }
  return status;
}

Result<std::vector<uint8_t>> RecordingChannel::RecvImpl() {
  Result<std::vector<uint8_t>> frame = inner_->Recv();
  if (frame.ok()) {
    transcript_.frames.push_back(
        TranscriptFrame{TranscriptFrame::Direction::kReceived, *frame});
  }
  return frame;
}

}  // namespace ppdbscan
