#ifndef PPDBSCAN_NET_MESSAGE_H_
#define PPDBSCAN_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "net/channel.h"

namespace ppdbscan {

/// A tagged protocol message: a 16-bit type identifier plus an opaque
/// payload. Message type values are defined by each protocol (see
/// core/responder.h for the DBSCAN protocol's tag space).
struct Message {
  uint16_t type = 0;
  std::vector<uint8_t> payload;
};

/// Reserved tag: a party that must bail out of a sub-protocol before its
/// next send (e.g. local input validation failed) sends an abort frame so
/// the peer's blocking receive fails fast instead of hanging. The payload
/// is one origin-code byte (the ORIGINATING failure's StatusCode, so
/// receivers can classify the abort without parsing text) followed by a
/// human-readable reason.
inline constexpr uint16_t kAbortMessageType = 0xFFFF;

/// The origin-code byte to embed when relaying `status` in an abort frame:
/// the status's own code, except for a kAborted already carrying an origin
/// — then the origin survives the relay unchanged.
uint8_t AbortOriginCode(const Status& status);

/// Builds the kAborted status for a received abort-frame payload: origin
/// byte decoded into Status::origin_code(), reason text in the message.
/// Payloads without a valid leading code byte (reason text starts
/// immediately) decode with an unknown origin.
Status AbortedFromPayload(const std::vector<uint8_t>& payload);

/// Sends an abort frame carrying `reason` plus `status`'s origin byte,
/// then returns `status` so the caller can
/// `return AbortPeer(channel, std::move(status), reason);`.
Status AbortPeer(Channel& channel, Status status, const std::string& reason);

/// Sends `payload` under `type` as one frame.
Status SendMessage(Channel& channel, uint16_t type,
                   const std::vector<uint8_t>& payload);

/// Sends the contents of a ByteWriter under `type`.
Status SendMessage(Channel& channel, uint16_t type, const ByteWriter& payload);

/// Receives the next message; kDataLoss on malformed frames.
Result<Message> RecvMessage(Channel& channel);

/// Receives the next message and verifies its type tag; a mismatch is a
/// protocol error (kDataLoss), which the DBSCAN responder loop surfaces
/// instead of misinterpreting payloads. A peer's abort frame maps to
/// kAborted with the peer's reason as the message.
Result<std::vector<uint8_t>> ExpectMessage(Channel& channel,
                                           uint16_t expected_type);

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_MESSAGE_H_
