#ifndef PPDBSCAN_NET_CHANNEL_H_
#define PPDBSCAN_NET_CHANNEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ppdbscan {

/// Exact traffic accounting for one endpoint of a two-party channel. The
/// communication-complexity experiments (E2/E3/E5 in DESIGN.md) read these
/// counters; `rounds` counts direction switches (a send following a receive
/// or vice versa), the standard round measure for interactive protocols.
struct ChannelStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t rounds = 0;

  uint64_t total_bytes() const { return bytes_sent + bytes_received; }
};

/// Reliable, ordered, blocking frame transport between two parties. One
/// instance is one endpoint. Implementations: MemoryChannel (in-process,
/// two threads) and SocketChannel (TCP, two processes).
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends one frame. Fails with kUnavailable once the peer has closed.
  Status Send(const std::vector<uint8_t>& frame);

  /// Blocks until a frame arrives. Fails with kUnavailable if the channel
  /// is closed and drained.
  Result<std::vector<uint8_t>> Recv();

  /// Signals end-of-stream to the peer. Idempotent.
  virtual void Close() = 0;

  /// Bounds every subsequent Recv: a call that cannot produce a frame
  /// within `deadline_ms` fails with kDeadlineExceeded instead of blocking
  /// forever — how a silent or stalled peer surfaces as a named error. A
  /// negative value (the default) restores unbounded blocking. Implemented
  /// by MemoryChannel (timed condition wait), SocketChannel (poll-gated
  /// reads), and ChannelMux streams; decorators override to forward to the
  /// wrapped channel. Not synchronized with a concurrent Recv: set it from
  /// the receiving thread, or before handing the channel to it.
  virtual void set_recv_deadline_ms(int deadline_ms) {
    recv_deadline_ms_ = deadline_ms;
  }
  /// The current Recv deadline (-1 = block forever).
  int recv_deadline_ms() const { return recv_deadline_ms_; }

  const ChannelStats& stats() const { return stats_; }
  /// Zeroes the traffic counters (used between benchmark phases).
  void ResetStats() { stats_ = ChannelStats(); }

 protected:
  virtual Status SendImpl(const std::vector<uint8_t>& frame) = 0;
  virtual Result<std::vector<uint8_t>> RecvImpl() = 0;

 private:
  enum class LastDir { kNone, kSend, kRecv };

  ChannelStats stats_;
  LastDir last_dir_ = LastDir::kNone;
  int recv_deadline_ms_ = -1;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_CHANNEL_H_
