#ifndef PPDBSCAN_NET_CHANNEL_H_
#define PPDBSCAN_NET_CHANNEL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppdbscan {

/// Exact traffic accounting for one endpoint of a two-party channel. The
/// communication-complexity experiments (E2/E3/E5 in DESIGN.md) read these
/// counters; `rounds` counts direction switches (a send following a receive
/// or vice versa), the standard round measure for interactive protocols.
/// `deadline_trips` and `aborts_seen` are failure-health counters (they
/// feed LinkHealth): receives that ran out their recv deadline, and abort
/// frames the message layer parsed off this channel.
struct ChannelStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t rounds = 0;
  uint64_t deadline_trips = 0;
  uint64_t aborts_seen = 0;

  uint64_t total_bytes() const { return bytes_sent + bytes_received; }
};

/// Operator-facing health record for one long-lived mesh link, accumulated
/// across jobs by a PartyServer (core/serve.h) and surfaced through
/// RunOutcome::link_health and the CLI's periodic health line. All counters
/// are cumulative since the daemon started; `idle_seconds` is computed at
/// snapshot time.
struct LinkHealth {
  size_t peer = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  /// Receives on this link's job streams that ran out their deadline.
  uint64_t deadline_trips = 0;
  /// Abort frames received on this link (a peer bailing out of a job).
  uint64_t aborts_seen = 0;
  /// Times the TCP link was re-established (and its session re-keyed).
  uint64_t reconnects = 0;
  /// Most recent non-OK event attributed to this link ("" while clean).
  std::string last_error;
  /// Seconds since this link last moved a frame, at snapshot time.
  double idle_seconds = 0;
};

/// Reliable, ordered, blocking frame transport between two parties. One
/// instance is one endpoint. Implementations: MemoryChannel (in-process,
/// two threads) and SocketChannel (TCP, two processes).
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends one frame. Fails with kUnavailable once the peer has closed.
  Status Send(const std::vector<uint8_t>& frame);

  /// Blocks until a frame arrives. Fails with kUnavailable if the channel
  /// is closed and drained.
  Result<std::vector<uint8_t>> Recv();

  /// Signals end-of-stream to the peer. Idempotent.
  virtual void Close() = 0;

  /// Bounds every subsequent Recv: a call that cannot produce a frame
  /// within `deadline_ms` fails with kDeadlineExceeded instead of blocking
  /// forever — how a silent or stalled peer surfaces as a named error. A
  /// negative value (the default) restores unbounded blocking. Implemented
  /// by MemoryChannel (timed condition wait), SocketChannel (poll-gated
  /// reads), and ChannelMux streams; decorators override to forward to the
  /// wrapped channel. Not synchronized with a concurrent Recv: set it from
  /// the receiving thread, or before handing the channel to it.
  virtual void set_recv_deadline_ms(int deadline_ms) {
    recv_deadline_ms_ = deadline_ms;
  }
  /// The current Recv deadline (-1 = block forever).
  int recv_deadline_ms() const { return recv_deadline_ms_; }

  /// Snapshot of the traffic counters. Returned by value: a channel under
  /// a ChannelMux is sent to and received from by different threads (job
  /// streams vs the reader), so the counters are mutex-guarded and a
  /// reference would race with the next frame.
  ChannelStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  /// Zeroes the traffic counters (used between benchmark phases).
  void ResetStats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = ChannelStats();
    last_dir_ = LastDir::kNone;
  }

  /// Called by the message layer (net/message.h) when it parses an abort
  /// frame off this channel, so per-link health can attribute it.
  void NoteAbortReceived() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.aborts_seen += 1;
  }

 protected:
  virtual Status SendImpl(const std::vector<uint8_t>& frame) = 0;
  virtual Result<std::vector<uint8_t>> RecvImpl() = 0;

 private:
  enum class LastDir { kNone, kSend, kRecv };

  /// Guards stats_ and last_dir_ (leaf lock, never held across I/O).
  mutable std::mutex stats_mu_;
  ChannelStats stats_;
  LastDir last_dir_ = LastDir::kNone;
  int recv_deadline_ms_ = -1;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_CHANNEL_H_
