#include "net/memory_channel.h"

#include <chrono>

namespace ppdbscan {

std::pair<std::unique_ptr<MemoryChannel>, std::unique_ptr<MemoryChannel>>
MemoryChannel::CreatePair() {
  auto shared = std::make_shared<Shared>();
  std::unique_ptr<MemoryChannel> a(new MemoryChannel(shared, 0));
  std::unique_ptr<MemoryChannel> b(new MemoryChannel(shared, 1));
  return {std::move(a), std::move(b)};
}

Status MemoryChannel::SendImpl(const std::vector<uint8_t>& frame) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  int peer = 1 - side_;
  if (shared_->closed[side_]) {
    return Status::FailedPrecondition("channel endpoint already closed");
  }
  if (shared_->closed[peer]) {
    return Status::Unavailable("peer closed the channel");
  }
  shared_->queue[peer].push_back(frame);
  shared_->cv.notify_all();
  return Status::Ok();
}

Result<std::vector<uint8_t>> MemoryChannel::RecvImpl() {
  std::unique_lock<std::mutex> lock(shared_->mu);
  int peer = 1 - side_;
  const auto ready = [this, peer] {
    return !shared_->queue[side_].empty() || shared_->closed[peer] ||
           shared_->closed[side_];
  };
  const int deadline_ms = recv_deadline_ms();
  if (deadline_ms < 0) {
    shared_->cv.wait(lock, ready);
  } else if (!shared_->cv.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                                   ready)) {
    return Status::DeadlineExceeded("recv deadline of " +
                                    std::to_string(deadline_ms) +
                                    "ms exceeded");
  }
  if (!shared_->queue[side_].empty()) {
    std::vector<uint8_t> frame = std::move(shared_->queue[side_].front());
    shared_->queue[side_].pop_front();
    return frame;
  }
  return Status::Unavailable("channel closed with no pending frames");
}

void MemoryChannel::Close() {
  std::lock_guard<std::mutex> lock(shared_->mu);
  shared_->closed[side_] = true;
  shared_->cv.notify_all();
}

}  // namespace ppdbscan
