#include "net/memory_channel.h"

namespace ppdbscan {

std::pair<std::unique_ptr<MemoryChannel>, std::unique_ptr<MemoryChannel>>
MemoryChannel::CreatePair() {
  auto shared = std::make_shared<Shared>();
  std::unique_ptr<MemoryChannel> a(new MemoryChannel(shared, 0));
  std::unique_ptr<MemoryChannel> b(new MemoryChannel(shared, 1));
  return {std::move(a), std::move(b)};
}

Status MemoryChannel::SendImpl(const std::vector<uint8_t>& frame) {
  std::lock_guard<std::mutex> lock(shared_->mu);
  int peer = 1 - side_;
  if (shared_->closed[side_]) {
    return Status::FailedPrecondition("channel endpoint already closed");
  }
  if (shared_->closed[peer]) {
    return Status::Unavailable("peer closed the channel");
  }
  shared_->queue[peer].push_back(frame);
  shared_->cv.notify_all();
  return Status::Ok();
}

Result<std::vector<uint8_t>> MemoryChannel::RecvImpl() {
  std::unique_lock<std::mutex> lock(shared_->mu);
  int peer = 1 - side_;
  shared_->cv.wait(lock, [this, peer] {
    return !shared_->queue[side_].empty() || shared_->closed[peer] ||
           shared_->closed[side_];
  });
  if (!shared_->queue[side_].empty()) {
    std::vector<uint8_t> frame = std::move(shared_->queue[side_].front());
    shared_->queue[side_].pop_front();
    return frame;
  }
  return Status::Unavailable("channel closed with no pending frames");
}

void MemoryChannel::Close() {
  std::lock_guard<std::mutex> lock(shared_->mu);
  shared_->closed[side_] = true;
  shared_->cv.notify_all();
}

}  // namespace ppdbscan
