#include "net/party_mesh.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/serialize.h"

namespace ppdbscan {

namespace {

/// Mesh link handshake: the connector sends a hello, the acceptor answers
/// with an ack. Both carry the magic, the handshake version, the sender's
/// view of the party count, and the sender's own index, so a link between
/// mismatched deployments fails with a descriptive error on both ends.
constexpr uint32_t kMeshMagic = 0x5050646d;  // "PPdm"
constexpr uint16_t kMeshVersion = 1;

std::vector<uint8_t> BuildHandshake(size_t parties, size_t index) {
  ByteWriter w;
  w.PutU32(kMeshMagic);
  w.PutU16(kMeshVersion);
  w.PutU32(static_cast<uint32_t>(parties));
  w.PutU32(static_cast<uint32_t>(index));
  return w.Take();
}

/// Parses a hello/ack and returns the sender's index.
Result<size_t> ParseHandshake(const std::vector<uint8_t>& frame,
                              size_t expected_parties) {
  ByteReader reader(frame);
  PPD_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kMeshMagic) {
    return Status::FailedPrecondition(
        "mesh handshake: bad magic (a non-mesh client connected?)");
  }
  PPD_ASSIGN_OR_RETURN(uint16_t version, reader.GetU16());
  if (version != kMeshVersion) {
    return Status::FailedPrecondition(
        "mesh handshake: peer speaks version " + std::to_string(version) +
        ", this build speaks " + std::to_string(kMeshVersion));
  }
  PPD_ASSIGN_OR_RETURN(uint32_t parties, reader.GetU32());
  if (parties != expected_parties) {
    return Status::FailedPrecondition(
        "mesh handshake: peer expects " + std::to_string(parties) +
        " parties, this mesh has " + std::to_string(expected_parties));
  }
  PPD_ASSIGN_OR_RETURN(uint32_t index, reader.GetU32());
  if (!reader.Done()) {
    return Status::DataLoss("mesh handshake: trailing bytes");
  }
  return static_cast<size_t>(index);
}

Status Annotate(const Status& status, const std::string& context) {
  return Status(status.code(), context + ": " + status.message());
}

}  // namespace

Result<PartyMesh> PartyMesh::Establish(
    const std::vector<MeshEndpoint>& endpoints, size_t index,
    const PartyMeshOptions& options) {
  std::optional<SocketListener> listener;
  if (index > 0) {
    if (index >= endpoints.size()) {
      return Status::InvalidArgument("party index out of range");
    }
    const int backlog = std::max<int>(options.min_backlog,
                                      static_cast<int>(endpoints.size()));
    Result<SocketListener> bound =
        SocketListener::Bind(endpoints[index].port, backlog);
    if (!bound.ok()) {
      return Annotate(bound.status(),
                      "binding party " + std::to_string(index) +
                          "'s mesh listener");
    }
    listener.emplace(std::move(*bound));
  }
  return EstablishWithListener(std::move(listener), endpoints, index,
                               options);
}

Result<PartyMesh> PartyMesh::EstablishWithListener(
    std::optional<SocketListener> listener,
    const std::vector<MeshEndpoint>& endpoints, size_t index,
    const PartyMeshOptions& options) {
  const size_t p = endpoints.size();
  if (p < 2) return Status::InvalidArgument("a party mesh needs >= 2 parties");
  if (index >= p) return Status::InvalidArgument("party index out of range");
  if (index > 0 && (!listener.has_value() || !listener->listening())) {
    return Status::InvalidArgument(
        "party " + std::to_string(index) + " needs a bound listener");
  }

  PartyMesh mesh;
  mesh.index_ = index;
  mesh.channels_.resize(p);
  mesh.listener_ = std::move(listener);
  mesh.endpoints_ = endpoints;
  mesh.options_ = options;

  // Connect phase: one link to every higher-indexed party, identified by a
  // hello and confirmed by the acceptor's ack.
  for (size_t j = index + 1; j < p; ++j) {
    const std::string context = "party " + std::to_string(index) +
                                " connecting to party " + std::to_string(j);
    Result<std::unique_ptr<SocketChannel>> channel = SocketChannel::Connect(
        endpoints[j].host, endpoints[j].port, options.connect_timeout_ms);
    if (!channel.ok()) return Annotate(channel.status(), context);
    Status sent = (*channel)->Send(BuildHandshake(p, index));
    if (!sent.ok()) return Annotate(sent, context);
    Result<std::vector<uint8_t>> ack = (*channel)->Recv();
    if (!ack.ok()) return Annotate(ack.status(), context);
    Result<size_t> acceptor = ParseHandshake(*ack, p);
    if (!acceptor.ok()) return Annotate(acceptor.status(), context);
    if (*acceptor != j) {
      return Status::FailedPrecondition(
          context + ": endpoint identifies as party " +
          std::to_string(*acceptor) + " — endpoint lists disagree");
    }
    mesh.channels_[j] = std::move(*channel);
  }

  // Accept phase: one link from every lower-indexed party, slotted by the
  // hello's sender index (arrival order is nondeterministic).
  for (size_t accepted = 0; accepted < index; ++accepted) {
    const std::string context =
        "party " + std::to_string(index) + " accepting mesh peer";
    Result<std::unique_ptr<SocketChannel>> channel =
        mesh.listener_->Accept(options.accept_timeout_ms);
    if (!channel.ok()) return Annotate(channel.status(), context);
    Result<std::vector<uint8_t>> hello = (*channel)->Recv();
    if (!hello.ok()) return Annotate(hello.status(), context);
    Result<size_t> peer = ParseHandshake(*hello, p);
    if (!peer.ok()) return Annotate(peer.status(), context);
    if (*peer >= index) {
      return Status::FailedPrecondition(
          context + ": party " + std::to_string(*peer) +
          " must not connect to a lower index (schedule violation)");
    }
    if (mesh.channels_[*peer] != nullptr) {
      return Status::FailedPrecondition(
          context + ": party " + std::to_string(*peer) +
          " connected twice");
    }
    Status acked = (*channel)->Send(BuildHandshake(p, index));
    if (!acked.ok()) return Annotate(acked, context);
    mesh.channels_[*peer] = std::move(*channel);
  }

  // Handshake traffic is transport setup, not protocol traffic.
  for (const std::unique_ptr<SocketChannel>& channel : mesh.channels_) {
    if (channel != nullptr) channel->ResetStats();
  }
  return mesh;
}

Status PartyMesh::ReestablishLink(size_t peer, int timeout_ms) {
  const size_t p = channels_.size();
  if (peer >= p || peer == index_) {
    return Status::InvalidArgument("ReestablishLink needs a mesh peer index");
  }
  if (endpoints_.size() != p) {
    return Status::FailedPrecondition(
        "this mesh was not built by Establish (no endpoint list retained)");
  }
  // Drop the dead link first: closing our end unblocks a peer that is
  // still parked in a Recv on it, and frees the port direction for the
  // fresh connection.
  if (channels_[peer] != nullptr) {
    channels_[peer]->Close();
    channels_[peer].reset();
  }
  const std::string context = "party " + std::to_string(index_) +
                              " re-establishing its link to party " +
                              std::to_string(peer);
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms > 0 ? timeout_ms : 0);
  const auto remaining_ms = [&]() -> int {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return static_cast<int>(std::max<int64_t>(left.count(), 0));
  };
  Status last = Status::Unavailable("peer never became reachable");

  if (peer > index_) {
    // Original schedule: the lower index connects. Retry the full
    // connect+handshake until the budget expires — the peer may still be
    // relaunching, or not yet accepting.
    while (true) {
      const int left = remaining_ms();
      if (left <= 0) break;
      Result<std::unique_ptr<SocketChannel>> channel = SocketChannel::Connect(
          endpoints_[peer].host, endpoints_[peer].port, left);
      if (!channel.ok()) {
        last = channel.status();
        continue;  // Connect consumed (part of) the budget retrying
      }
      (*channel)->set_recv_deadline_ms(std::max(remaining_ms(), 1));
      Status sent = (*channel)->Send(BuildHandshake(p, index_));
      Result<std::vector<uint8_t>> ack =
          sent.ok() ? (*channel)->Recv() : sent;
      Result<size_t> acceptor = ack.ok() ? ParseHandshake(*ack, p)
                                         : ack.status();
      if (acceptor.ok() && *acceptor != peer) {
        return Status::FailedPrecondition(
            context + ": endpoint identifies as party " +
            std::to_string(*acceptor) + " — endpoint lists disagree");
      }
      if (acceptor.ok()) {
        (*channel)->set_recv_deadline_ms(-1);
        (*channel)->ResetStats();
        channels_[peer] = std::move(*channel);
        return Status::Ok();
      }
      last = acceptor.status();
      (*channel)->Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } else {
    // The higher index re-accepts off its retained listener, waiting for
    // the hello that identifies the returning peer. A stray or mismatched
    // connection is dropped and the wait continues.
    if (!listener_.has_value() || !listener_->listening()) {
      return Status::FailedPrecondition(context +
                                        ": no retained listener to accept on");
    }
    while (true) {
      const int left = remaining_ms();
      if (left <= 0) break;
      Result<std::unique_ptr<SocketChannel>> channel = listener_->Accept(left);
      if (!channel.ok()) {
        last = channel.status();
        continue;
      }
      (*channel)->set_recv_deadline_ms(std::max(remaining_ms(), 1));
      Result<std::vector<uint8_t>> hello = (*channel)->Recv();
      Result<size_t> sender =
          hello.ok() ? ParseHandshake(*hello, p) : hello.status();
      if (sender.ok() && *sender == peer) {
        Status acked = (*channel)->Send(BuildHandshake(p, index_));
        if (!acked.ok()) {
          last = acked;
          continue;
        }
        (*channel)->set_recv_deadline_ms(-1);
        (*channel)->ResetStats();
        channels_[peer] = std::move(*channel);
        return Status::Ok();
      }
      last = sender.ok() ? Status::FailedPrecondition(
                               context + ": party " + std::to_string(*sender) +
                               " connected while waiting for party " +
                               std::to_string(peer))
                         : sender.status();
      (*channel)->Close();
    }
  }
  return Annotate(Status(StatusCode::kDeadlineExceeded,
                         "gave up after " + std::to_string(timeout_ms) +
                             "ms: " + last.ToString()),
                  context);
}

std::vector<Channel*> PartyMesh::links() const {
  std::vector<Channel*> links(channels_.size(), nullptr);
  for (size_t j = 0; j < channels_.size(); ++j) {
    if (j != index_) links[j] = channels_[j].get();
  }
  return links;
}

void PartyMesh::CloseAll() {
  for (const std::unique_ptr<SocketChannel>& channel : channels_) {
    if (channel != nullptr) channel->Close();
  }
  if (listener_.has_value()) listener_->Close();
}

}  // namespace ppdbscan
