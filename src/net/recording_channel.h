#ifndef PPDBSCAN_NET_RECORDING_CHANNEL_H_
#define PPDBSCAN_NET_RECORDING_CHANNEL_H_

#include <vector>

#include "net/channel.h"

namespace ppdbscan {

/// One captured frame of a party's protocol view.
struct TranscriptFrame {
  enum class Direction { kSent, kReceived };
  Direction direction;
  std::vector<uint8_t> payload;
};

/// A party's transcript: the message half of its semi-honest VIEW (§3.6 —
/// the view is (input, coins, received messages); sent frames are captured
/// too for debugging symmetry checks).
struct Transcript {
  std::vector<TranscriptFrame> frames;

  /// Concatenation of all received payloads, in order — the m_1..m_t of
  /// Definition 5 as one byte string.
  std::vector<uint8_t> ReceivedBytes() const;

  size_t sent_count() const;
  size_t received_count() const;
};

/// Channel decorator that records every frame passing through one
/// endpoint while forwarding to the wrapped channel (not owned; must
/// outlive this object).
///
/// The privacy test-suite uses transcripts to check simulation-paradigm
/// properties empirically: that repeated executions produce fresh
/// (non-repeating) ciphertext material, and that masked protocol outputs
/// are statistically uniform — the testable shadows of Lemma 7/8's
/// simulators.
class RecordingChannel : public Channel {
 public:
  explicit RecordingChannel(Channel* inner) : inner_(inner) {}

  const Transcript& transcript() const { return transcript_; }
  void ClearTranscript() { transcript_.frames.clear(); }

  void Close() override;

  void set_recv_deadline_ms(int deadline_ms) override {
    Channel::set_recv_deadline_ms(deadline_ms);
    inner_->set_recv_deadline_ms(deadline_ms);
  }

 protected:
  Status SendImpl(const std::vector<uint8_t>& frame) override;
  Result<std::vector<uint8_t>> RecvImpl() override;

 private:
  Channel* inner_;
  Transcript transcript_;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_RECORDING_CHANNEL_H_
