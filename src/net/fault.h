#ifndef PPDBSCAN_NET_FAULT_H_
#define PPDBSCAN_NET_FAULT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/channel.h"

namespace ppdbscan {

/// What a FaultInjectingChannel does once its trigger frame is reached.
enum class FaultKind : uint8_t {
  kNone = 0,       // pass-through (the decorator is inert)
  kDropLink,       // close the inner channel; every later op fails kUnavailable
  kStall,          // sends are swallowed, recvs never yield a frame again
  kCorruptFrame,   // flip a bit in one outgoing frame, then go clean
  kTruncateFrame,  // forward only half of one outgoing frame, then go clean
  kSendError,      // fail one send kUnavailable and close the link
};

const char* FaultKindToString(FaultKind kind);

/// A scripted fault: after `after_frames` clean frames have crossed the
/// channel (sends and recvs both count), `kind` fires. `seed` perturbs
/// which byte kCorruptFrame flips so matrices of runs exercise different
/// corruption sites deterministically.
struct FaultSchedule {
  FaultKind kind = FaultKind::kNone;
  uint64_t after_frames = 0;
  uint64_t seed = 0;
};

/// Channel decorator that injects one scripted fault into an otherwise
/// healthy link. Wraps any Channel (MemoryChannel endpoints in-process,
/// SocketChannel links in a real mesh) and is what chaos_test and the
/// serve daemon's fault hooks use to prove failure containment: every
/// party must surface a *named* error — never hang, crash, or return
/// wrong labels.
///
/// Fault semantics:
///  - kDropLink   : persistent. The inner channel is closed at the trigger;
///                  the op that tripped it (and all later ops) fail
///                  kUnavailable.
///  - kStall      : persistent, silent. Sends return Ok without
///                  transmitting; recvs discard whatever arrives and keep
///                  waiting, so only a recv deadline (forwarded to the
///                  inner channel) gets the caller out — with
///                  kDeadlineExceeded, exactly like a silent peer.
///  - kCorruptFrame : one-shot, send-side. One outgoing frame has a high
///                  bit flipped in its leading bytes (message tag / mux id),
///                  so the peer sees an unknown tag (kDataLoss) or a
///                  mis-routed stream (deadline) — a named failure, never a
///                  silently wrong payload.
///  - kTruncateFrame: one-shot, send-side. One outgoing frame is cut to
///                  half its length (framing stays intact; the *message*
///                  inside is short), so the peer fails parsing it.
///  - kSendError  : one-shot. One send fails kUnavailable and the link is
///                  closed, as if the kernel reported a broken pipe.
///
/// Thread-safe: the frame counter and fired flag are mutex-guarded, so a
/// send and a recv racing on the same wrapped link count consistently.
class FaultInjectingChannel : public Channel {
 public:
  /// Wraps a borrowed channel (must outlive this object).
  FaultInjectingChannel(Channel* inner, FaultSchedule schedule)
      : inner_(inner), schedule_(schedule) {}

  /// Wraps an owned channel.
  FaultInjectingChannel(std::unique_ptr<Channel> inner, FaultSchedule schedule)
      : owned_(std::move(inner)), inner_(owned_.get()), schedule_(schedule) {}

  ~FaultInjectingChannel() override { Close(); }

  void Close() override { inner_->Close(); }

  void set_recv_deadline_ms(int deadline_ms) override {
    Channel::set_recv_deadline_ms(deadline_ms);
    inner_->set_recv_deadline_ms(deadline_ms);
  }

  /// True once the scripted fault has triggered (diagnostics for tests).
  bool fault_fired() const;

 protected:
  Status SendImpl(const std::vector<uint8_t>& frame) override;
  Result<std::vector<uint8_t>> RecvImpl() override;

 private:
  /// Returns true when this frame is the one the schedule targets, and
  /// marks the fault fired. One-shot kinds only ever return true once.
  bool ShouldFire();

  std::unique_ptr<Channel> owned_;
  Channel* inner_;
  FaultSchedule schedule_;

  mutable std::mutex mu_;
  uint64_t frames_ = 0;  // clean frames forwarded, both directions
  bool fired_ = false;
  bool dropped_ = false;  // kDropLink/kSendError closed the inner channel
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_FAULT_H_
