#ifndef PPDBSCAN_NET_SOCKET_CHANNEL_H_
#define PPDBSCAN_NET_SOCKET_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.h"

namespace ppdbscan {

class SocketChannel;

/// A bound, listening TCP socket. Split from SocketChannel::Listen so
/// callers can bind port 0 (kernel-assigned), learn the actual port, hand
/// it to the connecting side, and only then block in Accept — the pattern
/// tests use to avoid fixed-port collisions. The listener is persistent:
/// Accept may be called repeatedly (a mesh party accepts P−1 peers off one
/// listener; a daemon re-accepts after a peer reconnects), and `backlog`
/// sizes the kernel's pending-connection queue so P−1 simultaneous
/// connects queue instead of being refused.
class SocketListener {
 public:
  /// Binds and listens on `port` (0 = pick a free ephemeral port). The
  /// backlog must cover the number of peers that may connect before the
  /// first Accept runs (a mesh passes at least its party count).
  static Result<SocketListener> Bind(uint16_t port, int backlog = 8);

  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&& other) noexcept;
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;
  ~SocketListener();

  /// The port actually bound (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  /// True until Close() (or a move) releases the socket.
  bool listening() const { return fd_ >= 0; }

  /// Accepts one queued peer. Repeatable: the listening socket stays open
  /// after every outcome — success, timeout, or error — until Close().
  /// A non-negative `timeout_ms` bounds the wait (kUnavailable on expiry),
  /// so a thread blocked in Accept cannot hang forever when the connecting
  /// side fails; -1 blocks indefinitely.
  Result<std::unique_ptr<SocketChannel>> Accept(int timeout_ms = -1);

  /// Releases the listening socket. Idempotent.
  void Close();

 private:
  SocketListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  uint16_t port_;
};

/// TCP transport for running the parties as separate processes (see
/// examples/tcp_parties.cc and net/party_mesh.h). Frames are sent as a
/// 4-byte big-endian length followed by the payload.
class SocketChannel : public Channel {
 public:
  /// Largest frame either side will put on (or take off) the wire. The
  /// sender enforces it in SendImpl — a frame whose size does not fit the
  /// 4-byte length header must fail loudly (kInvalidArgument) instead of
  /// silently truncating the header and desyncing the stream — and the
  /// receiver enforces the same bound on incoming headers (kDataLoss), so
  /// the two limits can never disagree.
  static constexpr uint32_t kMaxFrame = 64u << 20;  // 64 MiB

  /// Listens on `port` (IPv4 loopback-any) and accepts exactly one peer.
  /// Convenience wrapper over SocketListener::Bind + Accept.
  static Result<std::unique_ptr<SocketChannel>> Listen(uint16_t port);

  /// Connects to a listening peer, retrying for up to `timeout_ms` so the
  /// two processes can be started in either order.
  static Result<std::unique_ptr<SocketChannel>> Connect(
      const std::string& host, uint16_t port, int timeout_ms = 5000);

  ~SocketChannel() override;

  /// Shuts the socket down (both directions) without releasing the fd:
  /// wakes any thread blocked in Recv on this channel and sends FIN, but
  /// the descriptor itself is only closed by the destructor, so a reader
  /// mid-read(2) can never see its fd number reused. Idempotent and safe
  /// to call from a thread other than the reader's.
  void Close() override;

  /// The underlying socket descriptor (valid until destruction; after
  /// Close() it is shut down but still allocated). Exposed so a daemon's
  /// signal handler can shutdown(2) blocked reads — shutdown is
  /// async-signal-safe, Close() is not.
  int native_handle() const { return fd_; }

 protected:
  Status SendImpl(const std::vector<uint8_t>& frame) override;
  Result<std::vector<uint8_t>> RecvImpl() override;

 private:
  friend class SocketListener;

  explicit SocketChannel(int fd) : fd_(fd) {}

  Status WriteAll(const uint8_t* data, size_t len);
  /// Reads exactly `len` bytes. With a non-negative `budget_ms` every read
  /// is poll-gated against one shared budget (the per-Recv deadline covers
  /// header + payload together), failing kDeadlineExceeded on expiry.
  Status ReadAll(uint8_t* data, size_t len, int budget_ms,
                 const std::chrono::steady_clock::time_point& deadline);

  /// Written only by the constructor and destructor; Close() leaves it
  /// alone (shutdown-only) so concurrent readers can load it race-free.
  int fd_;
  /// Set by Close(); later Send/Recv fail kFailedPrecondition.
  std::atomic<bool> closed_{false};
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_SOCKET_CHANNEL_H_
