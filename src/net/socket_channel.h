#ifndef PPDBSCAN_NET_SOCKET_CHANNEL_H_
#define PPDBSCAN_NET_SOCKET_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.h"

namespace ppdbscan {

class SocketChannel;

/// A bound, listening TCP socket that has not yet accepted its peer. Split
/// from SocketChannel::Listen so callers can bind port 0 (kernel-assigned),
/// learn the actual port, hand it to the connecting side, and only then
/// block in Accept — the pattern tests use to avoid fixed-port collisions.
class SocketListener {
 public:
  /// Binds and listens on `port` (0 = pick a free ephemeral port).
  static Result<SocketListener> Bind(uint16_t port);

  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&& other) noexcept;
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;
  ~SocketListener();

  /// The port actually bound (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  /// Accepts exactly one peer and releases the listening socket. A
  /// non-negative `timeout_ms` bounds the wait (kUnavailable on expiry),
  /// so a harness thread blocked in Accept cannot hang forever when the
  /// connecting side fails; -1 blocks indefinitely.
  Result<std::unique_ptr<SocketChannel>> Accept(int timeout_ms = -1);

 private:
  SocketListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  uint16_t port_;
};

/// TCP transport for running the two parties as separate processes (see
/// examples/tcp_parties.cc). Frames are sent as a
/// 4-byte big-endian length followed by the payload.
class SocketChannel : public Channel {
 public:
  /// Listens on `port` (IPv4 loopback-any) and accepts exactly one peer.
  /// Convenience wrapper over SocketListener::Bind + Accept.
  static Result<std::unique_ptr<SocketChannel>> Listen(uint16_t port);

  /// Connects to a listening peer, retrying for up to `timeout_ms` so the
  /// two processes can be started in either order.
  static Result<std::unique_ptr<SocketChannel>> Connect(
      const std::string& host, uint16_t port, int timeout_ms = 5000);

  ~SocketChannel() override;

  void Close() override;

 protected:
  Status SendImpl(const std::vector<uint8_t>& frame) override;
  Result<std::vector<uint8_t>> RecvImpl() override;

 private:
  friend class SocketListener;

  explicit SocketChannel(int fd) : fd_(fd) {}

  Status WriteAll(const uint8_t* data, size_t len);
  Status ReadAll(uint8_t* data, size_t len);

  int fd_;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_NET_SOCKET_CHANNEL_H_
