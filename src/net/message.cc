#include "net/message.h"

#include <string>

namespace ppdbscan {

Status SendMessage(Channel& channel, uint16_t type,
                   const std::vector<uint8_t>& payload) {
  ByteWriter frame;
  frame.PutU16(type);
  frame.PutRaw(payload.data(), payload.size());
  return channel.Send(frame.data());
}

Status SendMessage(Channel& channel, uint16_t type,
                   const ByteWriter& payload) {
  return SendMessage(channel, type, payload.data());
}

Result<Message> RecvMessage(Channel& channel) {
  PPD_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, channel.Recv());
  if (frame.size() < 2) {
    return Status::DataLoss("frame shorter than message header");
  }
  Message msg;
  msg.type = static_cast<uint16_t>(frame[0] << 8 | frame[1]);
  msg.payload.assign(frame.begin() + 2, frame.end());
  if (msg.type == kAbortMessageType) channel.NoteAbortReceived();
  return msg;
}

Result<std::vector<uint8_t>> ExpectMessage(Channel& channel,
                                           uint16_t expected_type) {
  PPD_ASSIGN_OR_RETURN(Message msg, RecvMessage(channel));
  if (msg.type == kAbortMessageType) {
    return AbortedFromPayload(msg.payload);
  }
  if (msg.type != expected_type) {
    return Status::DataLoss("unexpected message type " +
                            std::to_string(msg.type) + ", wanted " +
                            std::to_string(expected_type));
  }
  return std::move(msg.payload);
}

uint8_t AbortOriginCode(const Status& status) {
  if (status.code() == StatusCode::kAborted &&
      status.origin_code() != StatusCode::kOk) {
    return static_cast<uint8_t>(status.origin_code());
  }
  return static_cast<uint8_t>(status.code());
}

Status AbortedFromPayload(const std::vector<uint8_t>& payload) {
  StatusCode origin = StatusCode::kOk;  // unknown
  size_t text_begin = 0;
  // Valid code bytes are all below any printable character, so a legacy
  // text-only payload can never be misread as carrying one.
  if (!payload.empty() && payload[0] != 0 &&
      payload[0] <= static_cast<uint8_t>(StatusCode::kAborted)) {
    origin = static_cast<StatusCode>(payload[0]);
    text_begin = 1;
  }
  return Status::Aborted(
             "peer aborted protocol: " +
             std::string(payload.begin() + static_cast<long>(text_begin),
                         payload.end()))
      .WithOrigin(origin);
}

Status AbortPeer(Channel& channel, Status status, const std::string& reason) {
  std::vector<uint8_t> payload;
  payload.reserve(reason.size() + 1);
  payload.push_back(AbortOriginCode(status));
  payload.insert(payload.end(), reason.begin(), reason.end());
  // Best effort: the abort itself may fail if the channel is gone.
  (void)SendMessage(channel, kAbortMessageType, payload);
  return status;
}

}  // namespace ppdbscan
