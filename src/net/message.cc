#include "net/message.h"

#include <string>

namespace ppdbscan {

Status SendMessage(Channel& channel, uint16_t type,
                   const std::vector<uint8_t>& payload) {
  ByteWriter frame;
  frame.PutU16(type);
  frame.PutRaw(payload.data(), payload.size());
  return channel.Send(frame.data());
}

Status SendMessage(Channel& channel, uint16_t type,
                   const ByteWriter& payload) {
  return SendMessage(channel, type, payload.data());
}

Result<Message> RecvMessage(Channel& channel) {
  PPD_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, channel.Recv());
  if (frame.size() < 2) {
    return Status::DataLoss("frame shorter than message header");
  }
  Message msg;
  msg.type = static_cast<uint16_t>(frame[0] << 8 | frame[1]);
  msg.payload.assign(frame.begin() + 2, frame.end());
  if (msg.type == kAbortMessageType) channel.NoteAbortReceived();
  return msg;
}

Result<std::vector<uint8_t>> ExpectMessage(Channel& channel,
                                           uint16_t expected_type) {
  PPD_ASSIGN_OR_RETURN(Message msg, RecvMessage(channel));
  if (msg.type == kAbortMessageType) {
    return Status::Aborted(
        "peer aborted protocol: " +
        std::string(msg.payload.begin(), msg.payload.end()));
  }
  if (msg.type != expected_type) {
    return Status::DataLoss("unexpected message type " +
                            std::to_string(msg.type) + ", wanted " +
                            std::to_string(expected_type));
  }
  return std::move(msg.payload);
}

Status AbortPeer(Channel& channel, Status status, const std::string& reason) {
  std::vector<uint8_t> payload(reason.begin(), reason.end());
  // Best effort: the abort itself may fail if the channel is gone.
  (void)SendMessage(channel, kAbortMessageType, payload);
  return status;
}

}  // namespace ppdbscan
