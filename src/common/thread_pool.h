#ifndef PPDBSCAN_COMMON_THREAD_POOL_H_
#define PPDBSCAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ppdbscan {

/// Fixed-size pool of worker threads draining a single FIFO task queue.
///
/// Deliberately simple (no work stealing, no priorities): the tasks this
/// library submits are coarse-grained bigint operations (one Montgomery
/// exponentiation each, ~10µs–10ms), so a single locked queue is nowhere
/// near contention. Waiters can call RunOnePending() to execute queued
/// tasks while they block, which makes nested submission (a pool task that
/// itself fans out onto the same pool) deadlock-free.
///
/// Thread-safe: Submit/RunOnePending may be called from any thread,
/// including pool workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  /// Drains nothing: outstanding tasks are completed before destruction
  /// returns (the queue is run to exhaustion by the workers).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future that becomes ready when it has run.
  /// An exception thrown by `fn` is captured into the future.
  std::future<void> Submit(std::function<void()> fn);

  /// Pops and runs one queued task on the calling thread. Returns false if
  /// the queue was empty. Call in a wait loop to help the pool make
  /// progress instead of blocking.
  bool RunOnePending();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Process-wide pool, created on first use. Sized by the PPDBSCAN_THREADS
/// environment variable when set to a positive integer, otherwise by
/// std::thread::hardware_concurrency(). With PPDBSCAN_THREADS=1 the pool
/// still exists but ParallelFor degrades to a plain serial loop.
ThreadPool& GlobalThreadPool();

/// Runs fn(0) … fn(n-1), fanning the calls across `pool` (the global pool
/// when null). The calling thread participates, so the call never blocks
/// on an idle pool and nesting is safe. Iteration order is unspecified;
/// fn must be safe to call concurrently with itself. The first exception
/// thrown by any fn is rethrown on the calling thread after all scheduled
/// iterations have finished; remaining iterations are abandoned.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 ThreadPool* pool = nullptr);

}  // namespace ppdbscan

#endif  // PPDBSCAN_COMMON_THREAD_POOL_H_
