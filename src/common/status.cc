#include "common/status.h"

namespace ppdbscan {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ppdbscan
