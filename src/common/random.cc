#include "common/random.h"

#include <cmath>
#include <cstring>
#include <random>

#include "common/status.h"

namespace ppdbscan {

namespace {

inline uint32_t RotL(uint32_t v, int n) { return (v << n) | (v >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = RotL(d ^ a, 16);
  c += d;
  b = RotL(b ^ c, 12);
  a += b;
  d = RotL(d ^ a, 8);
  c += d;
  b = RotL(b ^ c, 7);
}

// RFC 8439 ChaCha20 block function: 20 rounds over `in`, result added to the
// input state, serialized little-endian into `out`.
void ChaCha20Block(const std::array<uint32_t, 16>& in, uint8_t out[64]) {
  std::array<uint32_t, 16> x = in;
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = x[i] + in[i];
    out[4 * i + 0] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

constexpr uint32_t kSigma[4] = {0x61707865, 0x3320646e, 0x79622d32,
                                0x6b206574};  // "expand 32-byte k"

}  // namespace

SecureRng::SecureRng() {
  std::random_device rd;
  state_[0] = kSigma[0];
  state_[1] = kSigma[1];
  state_[2] = kSigma[2];
  state_[3] = kSigma[3];
  for (int i = 4; i < 12; ++i) state_[i] = rd();
  state_[12] = 0;  // block counter
  state_[13] = rd();
  state_[14] = rd();
  state_[15] = rd();
}

SecureRng::SecureRng(uint64_t seed) {
  state_[0] = kSigma[0];
  state_[1] = kSigma[1];
  state_[2] = kSigma[2];
  state_[3] = kSigma[3];
  // SplitMix64 expansion of the seed into the 8 key words + 3 nonce words.
  uint64_t s = seed;
  auto next = [&s]() {
    s += 0x9e3779b97f4a7c15ULL;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  for (int i = 0; i < 4; ++i) {
    uint64_t v = next();
    state_[4 + 2 * i] = static_cast<uint32_t>(v);
    state_[5 + 2 * i] = static_cast<uint32_t>(v >> 32);
  }
  state_[12] = 0;
  uint64_t nonce = next();
  state_[13] = static_cast<uint32_t>(nonce);
  state_[14] = static_cast<uint32_t>(nonce >> 32);
  state_[15] = static_cast<uint32_t>(next());
}

SecureRng::SecureRng(const std::array<uint8_t, 32>& key) {
  state_[0] = kSigma[0];
  state_[1] = kSigma[1];
  state_[2] = kSigma[2];
  state_[3] = kSigma[3];
  // RFC 8439 key layout: 8 little-endian key words.
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = static_cast<uint32_t>(key[4 * i]) |
                    static_cast<uint32_t>(key[4 * i + 1]) << 8 |
                    static_cast<uint32_t>(key[4 * i + 2]) << 16 |
                    static_cast<uint32_t>(key[4 * i + 3]) << 24;
  }
  state_[12] = 0;  // block counter
  state_[13] = 0;  // zero nonce: streams differ iff keys differ
  state_[14] = 0;
  state_[15] = 0;
}

SecureRng SecureRng::Fork() {
  std::array<uint8_t, 32> key;
  FillBytes(key.data(), key.size());
  return SecureRng(key);
}

void SecureRng::Refill() {
  ChaCha20Block(state_, buffer_.data());
  buffer_pos_ = 0;
  // 64-bit counter across words 12 and 13 (we reserve word 13 as the high
  // half; the RFC layout uses it as nonce but the DRBG never reuses keys).
  if (++state_[12] == 0) ++state_[13];
}

void SecureRng::FillBytes(uint8_t* out, size_t len) {
  size_t produced = 0;
  while (produced < len) {
    if (buffer_pos_ == 64) Refill();
    size_t take = std::min<size_t>(64 - buffer_pos_, len - produced);
    std::memcpy(out + produced, buffer_.data() + buffer_pos_, take);
    buffer_pos_ += take;
    produced += take;
  }
}

std::vector<uint8_t> SecureRng::Bytes(size_t len) {
  std::vector<uint8_t> out(len);
  FillBytes(out.data(), len);
  return out;
}

uint64_t SecureRng::NextU64() {
  uint8_t raw[8];
  FillBytes(raw, sizeof(raw));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | raw[i];
  return v;
}

uint64_t SecureRng::UniformU64(uint64_t bound) {
  PPD_CHECK_MSG(bound > 0, "UniformU64 bound must be positive");
  // Rejection sampling over the largest multiple of bound that fits.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

double SecureRng::NextDouble() {
  // 53 uniform bits mapped to [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double SecureRng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace ppdbscan
