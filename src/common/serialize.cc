#include "common/serialize.h"

namespace ppdbscan {

void ByteWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void ByteWriter::PutBytes(const std::vector<uint8_t>& bytes) {
  PutU32(static_cast<uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::PutRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

Result<uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) return Status::DataLoss("truncated u8");
  return buf_[pos_++];
}

Result<uint16_t> ByteReader::GetU16() {
  if (remaining() < 2) return Status::DataLoss("truncated u16");
  uint16_t v = static_cast<uint16_t>(buf_[pos_] << 8 | buf_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) return Status::DataLoss("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | buf_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) return Status::DataLoss("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<std::vector<uint8_t>> ByteReader::GetBytes() {
  PPD_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) return Status::DataLoss("truncated byte string");
  std::vector<uint8_t> out(buf_.begin() + pos_, buf_.begin() + pos_ + len);
  pos_ += len;
  return out;
}

std::string ToHex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace ppdbscan
