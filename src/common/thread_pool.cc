#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace ppdbscan {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

bool ThreadPool::RunOnePending() {
  std::packaged_task<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = [] {
    size_t threads = 0;
    if (const char* env = std::getenv("PPDBSCAN_THREADS")) {
      char* end = nullptr;
      long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0) {
        threads = static_cast<size_t>(parsed);
      }
    }
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 ThreadPool* pool) {
  if (n == 0) return;
  if (pool == nullptr) pool = &GlobalThreadPool();
  if (pool->size() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared cursor: every participant (pool workers plus this thread) grabs
  // the next unclaimed index. Tasks are coarse, so per-index claiming costs
  // nothing and load-balances perfectly.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto first_error = std::make_shared<std::exception_ptr>();
  auto error_mu = std::make_shared<std::mutex>();
  auto drain = [next, failed, first_error, error_mu, n, &fn] {
    size_t i;
    while (!failed->load(std::memory_order_relaxed) &&
           (i = next->fetch_add(1)) < n) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mu);
        if (!*first_error) *first_error = std::current_exception();
        failed->store(true, std::memory_order_relaxed);
      }
    }
  };

  size_t helpers = std::min(pool->size(), n - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t h = 0; h < helpers; ++h) futures.push_back(pool->Submit(drain));
  drain();
  for (std::future<void>& f : futures) {
    // Help run queued work (possibly other callers' tasks) while waiting,
    // so nested ParallelFor calls cannot deadlock the pool.
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool->RunOnePending()) {
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
    f.get();  // drain() swallows fn's exceptions; this never throws
  }
  if (*first_error) std::rethrow_exception(*first_error);
}

}  // namespace ppdbscan
