#ifndef PPDBSCAN_COMMON_STATUS_H_
#define PPDBSCAN_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace ppdbscan {

/// Canonical error categories used across the library. Modeled after the
/// widely used absl/gRPC canonical codes, restricted to the ones this
/// library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed a value outside the documented domain
  kFailedPrecondition, // object/system not in a state that permits the call
  kOutOfRange,         // arithmetic result does not fit the target domain
  kInternal,           // invariant violation inside the library
  kUnavailable,        // transient transport failure (e.g. peer closed)
  kDataLoss,           // corrupt or truncated wire data
  kDeadlineExceeded,   // a blocking operation ran past its deadline
  kAborted,            // the peer abandoned the protocol (abort frame)
};

/// Returns the canonical spelling of a StatusCode ("OK", "INVALID_ARGUMENT",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error type. All fallible public APIs in this library
/// return Status (or Result<T>); exceptions are never thrown across library
/// boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// For a kAborted status that relays another party's failure: the
  /// ORIGINATING failure's code, threaded through the abort frame as a
  /// structured byte. kOk means "unknown origin" (e.g. a bare abort).
  /// Retry classification keys on this, never on message text — an error
  /// whose human-readable detail merely mentions a code name must not
  /// change class.
  StatusCode origin_code() const { return origin_code_; }

  /// Returns a copy of this status carrying `origin` as its origin code.
  Status WithOrigin(StatusCode origin) const {
    Status s = *this;
    s.origin_code_ = origin;
    return s;
  }

  /// "OK" or "CODE: message".
  std::string ToString() const;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  StatusCode origin_code_ = StatusCode::kOk;  // see origin_code()
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts the program (programming error), mirroring
/// absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the held value; aborts if !ok().
  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const {
    if (!value_.has_value()) {
      std::cerr << "Result::value() called on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Uniquely-named temporary for PPD_ASSIGN_OR_RETURN.
#define PPD_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define PPD_STATUS_MACROS_CONCAT_(x, y) PPD_STATUS_MACROS_CONCAT_INNER_(x, y)
}  // namespace internal

/// Evaluates `expr` (a Status); returns it from the enclosing function if it
/// is not OK.
#define PPD_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::ppdbscan::Status ppd_status_ = (expr);        \
    if (!ppd_status_.ok()) return ppd_status_;      \
  } while (false)

/// Evaluates `expr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs`.
#define PPD_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto PPD_STATUS_MACROS_CONCAT_(ppd_result_, __LINE__) = (expr);        \
  if (!PPD_STATUS_MACROS_CONCAT_(ppd_result_, __LINE__).ok())            \
    return PPD_STATUS_MACROS_CONCAT_(ppd_result_, __LINE__).status();    \
  lhs = std::move(PPD_STATUS_MACROS_CONCAT_(ppd_result_, __LINE__)).value()

/// Aborts with a diagnostic if `cond` is false. Used for invariants whose
/// violation indicates a bug in this library rather than bad input.
#define PPD_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "PPD_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << std::endl;                              \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

/// PPD_CHECK with an additional streamed message.
#define PPD_CHECK_MSG(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "PPD_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << ": " << msg << std::endl;               \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

}  // namespace ppdbscan

#endif  // PPDBSCAN_COMMON_STATUS_H_
