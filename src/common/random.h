#ifndef PPDBSCAN_COMMON_RANDOM_H_
#define PPDBSCAN_COMMON_RANDOM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppdbscan {

/// Cryptographically strong deterministic random bit generator built on the
/// ChaCha20 stream cipher (RFC 8439 block function) running in counter mode
/// over an all-zero message.
///
/// Three construction modes:
///  * `SecureRng()` seeds 32 key bytes from std::random_device (OS entropy);
///    use for protocol runs.
///  * `SecureRng(seed)` expands a 64-bit seed into the key; use for
///    reproducible tests and benchmarks.
///  * `SecureRng(key)` installs a full 256-bit key; use to fork a child
///    stream from a parent rng (draw 32 bytes and construct) without
///    collapsing the parent's entropy to 64 bits.
///
/// Not thread-safe; create one instance per thread/party.
class SecureRng {
 public:
  /// Seeds from the operating system entropy source.
  SecureRng();
  /// Deterministically expands `seed` into the cipher key. Streams from
  /// equal seeds are identical across platforms.
  explicit SecureRng(uint64_t seed);
  /// Installs `key` as the full 256-bit ChaCha20 key (zero nonce/counter).
  /// Streams from equal keys are identical across platforms.
  explicit SecureRng(const std::array<uint8_t, 32>& key);

  /// Forks an independent child stream keyed by 32 bytes drawn from this
  /// rng: deterministic when this rng is seeded, full-entropy when it is
  /// OS-seeded.
  SecureRng Fork();

  SecureRng(const SecureRng&) = delete;
  SecureRng& operator=(const SecureRng&) = delete;
  SecureRng(SecureRng&&) = default;
  SecureRng& operator=(SecureRng&&) = default;

  /// Returns 64 uniform random bits.
  uint64_t NextU64();

  /// Returns a uniform value in [0, bound). `bound` must be > 0. Uses
  /// rejection sampling, so the result is exactly uniform.
  uint64_t UniformU64(uint64_t bound);

  /// Fills `out[0..len)` with random bytes.
  void FillBytes(uint8_t* out, size_t len);

  /// Returns `len` random bytes.
  std::vector<uint8_t> Bytes(size_t len);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a sample from the standard normal distribution (Box-Muller).
  double NextGaussian();

 private:
  void Refill();

  std::array<uint32_t, 16> state_;   // ChaCha20 input block
  std::array<uint8_t, 64> buffer_;   // current keystream block
  size_t buffer_pos_ = 64;           // consumed bytes in buffer_
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_COMMON_RANDOM_H_
