#ifndef PPDBSCAN_COMMON_SERIALIZE_H_
#define PPDBSCAN_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppdbscan {

/// Append-only byte sink used to build wire messages. All multi-byte
/// integers are big-endian.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Writes a u32 length prefix followed by the raw bytes.
  void PutBytes(const std::vector<uint8_t>& bytes);
  /// Writes raw bytes with no length prefix.
  void PutRaw(const uint8_t* data, size_t len);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte buffer. Every getter is bounds-checked and
/// reports kDataLoss on truncated input (failure injection relies on this).
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  /// Reads a u32 length prefix then that many bytes.
  Result<std::vector<uint8_t>> GetBytes();

  size_t remaining() const { return buf_.size() - pos_; }
  bool Done() const { return pos_ == buf_.size(); }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

/// Lowercase hex encoding of `bytes` (for logging and tests).
std::string ToHex(const std::vector<uint8_t>& bytes);

}  // namespace ppdbscan

#endif  // PPDBSCAN_COMMON_SERIALIZE_H_
