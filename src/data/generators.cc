#include "data/generators.h"

#include <cmath>

#include "common/status.h"

namespace ppdbscan {

RawDataset MakeBlobs(SecureRng& rng, size_t num_clusters,
                     size_t points_per_cluster, size_t dims, double stddev,
                     double box) {
  PPD_CHECK_MSG(dims >= 1, "dims must be >= 1");
  RawDataset out;
  out.dims = dims;
  // Rejection-sample well-separated centers (give up separation, not
  // progress, after too many rejections).
  std::vector<std::vector<double>> centers;
  const double min_sep = 4.0 * stddev;
  while (centers.size() < num_clusters) {
    std::vector<double> c(dims);
    for (double& v : c) v = (rng.NextDouble() * 2.0 - 1.0) * box;
    bool ok = true;
    for (const std::vector<double>& other : centers) {
      double d2 = 0;
      for (size_t t = 0; t < dims; ++t) {
        d2 += (c[t] - other[t]) * (c[t] - other[t]);
      }
      if (d2 < min_sep * min_sep) {
        ok = false;
        break;
      }
    }
    static constexpr int kMaxTries = 1000;
    static thread_local int tries = 0;
    if (ok || ++tries > kMaxTries) {
      centers.push_back(std::move(c));
      tries = 0;
    }
  }
  for (size_t k = 0; k < num_clusters; ++k) {
    for (size_t i = 0; i < points_per_cluster; ++i) {
      std::vector<double> p(dims);
      for (size_t t = 0; t < dims; ++t) {
        p[t] = centers[k][t] + rng.NextGaussian() * stddev;
      }
      out.points.push_back(std::move(p));
      out.true_labels.push_back(static_cast<int>(k));
    }
  }
  return out;
}

namespace {

/// Evenly spaced position in [0, 1) for slot i of n, with ±1/4-slot jitter.
/// Purely uniform angles leave Θ(log n / n) arc gaps that fragment a curve
/// for any fixed Eps; curve-shaped generators are meant to produce one
/// connected component per curve, so they jitter fixed slots instead.
double JitteredSlot(SecureRng& rng, size_t i, size_t n) {
  double jitter = (rng.NextDouble() - 0.5) * 0.5;
  return (static_cast<double>(i) + 0.5 + jitter) / static_cast<double>(n);
}

}  // namespace

RawDataset MakeTwoMoons(SecureRng& rng, size_t points_per_moon,
                        double noise_stddev) {
  RawDataset out;
  out.dims = 2;
  for (size_t i = 0; i < points_per_moon; ++i) {
    double theta = M_PI * JitteredSlot(rng, i, points_per_moon);
    out.points.push_back({std::cos(theta) + rng.NextGaussian() * noise_stddev,
                          std::sin(theta) + rng.NextGaussian() * noise_stddev});
    out.true_labels.push_back(0);
  }
  for (size_t i = 0; i < points_per_moon; ++i) {
    double theta = M_PI * JitteredSlot(rng, i, points_per_moon);
    out.points.push_back(
        {1.0 - std::cos(theta) + rng.NextGaussian() * noise_stddev,
         0.5 - std::sin(theta) + rng.NextGaussian() * noise_stddev});
    out.true_labels.push_back(1);
  }
  return out;
}

RawDataset MakeRings(SecureRng& rng, size_t points_per_ring,
                     const std::vector<double>& radii, double noise_stddev) {
  RawDataset out;
  out.dims = 2;
  for (size_t k = 0; k < radii.size(); ++k) {
    for (size_t i = 0; i < points_per_ring; ++i) {
      double theta = 2.0 * M_PI * JitteredSlot(rng, i, points_per_ring);
      double r = radii[k] + rng.NextGaussian() * noise_stddev;
      out.points.push_back({r * std::cos(theta), r * std::sin(theta)});
      out.true_labels.push_back(static_cast<int>(k));
    }
  }
  return out;
}

RawDataset MakeDumbbell(SecureRng& rng, size_t points_per_blob,
                        size_t bridge_points, double separation,
                        double stddev) {
  RawDataset out;
  out.dims = 2;
  const double half = separation / 2.0;
  for (int side = 0; side < 2; ++side) {
    double cx = side == 0 ? -half : half;
    for (size_t i = 0; i < points_per_blob; ++i) {
      out.points.push_back({cx + rng.NextGaussian() * stddev,
                            rng.NextGaussian() * stddev});
      out.true_labels.push_back(0);  // one connected component
    }
  }
  for (size_t i = 0; i < bridge_points; ++i) {
    // Evenly spaced along the bar, with slight jitter.
    double frac = (static_cast<double>(i) + 0.5) /
                  static_cast<double>(bridge_points);
    out.points.push_back({-half + frac * separation,
                          rng.NextGaussian() * stddev * 0.2});
    out.true_labels.push_back(0);
  }
  return out;
}

void AddUniformNoise(RawDataset& dataset, SecureRng& rng, size_t count,
                     double box) {
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> p(dataset.dims);
    for (double& v : p) v = (rng.NextDouble() * 2.0 - 1.0) * box;
    dataset.points.push_back(std::move(p));
    dataset.true_labels.push_back(-1);
  }
}

}  // namespace ppdbscan
