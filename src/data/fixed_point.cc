#include "data/fixed_point.h"

#include <cmath>

namespace ppdbscan {

FixedPointEncoder::FixedPointEncoder(double scale) : scale_(scale) {
  PPD_CHECK_MSG(scale > 0, "scale must be positive");
}

Result<int64_t> FixedPointEncoder::EncodeScalar(double v) const {
  double scaled = std::round(v * scale_);
  if (!(std::fabs(scaled) <=
        static_cast<double>(Dataset::kMaxAbsCoordinate))) {
    return Status::OutOfRange("scaled coordinate exceeds dataset bound");
  }
  return static_cast<int64_t>(scaled);
}

Result<Dataset> FixedPointEncoder::Encode(const RawDataset& raw) const {
  Dataset out(raw.dims);
  for (const std::vector<double>& p : raw.points) {
    std::vector<int64_t> q(p.size());
    for (size_t t = 0; t < p.size(); ++t) {
      PPD_ASSIGN_OR_RETURN(q[t], EncodeScalar(p[t]));
    }
    PPD_RETURN_IF_ERROR(out.Add(std::move(q)));
  }
  return out;
}

Result<int64_t> FixedPointEncoder::EncodeEpsSquared(double eps) const {
  if (eps < 0) return Status::InvalidArgument("eps must be non-negative");
  PPD_ASSIGN_OR_RETURN(int64_t scaled, EncodeScalar(eps));
  return scaled * scaled;
}

int64_t FixedPointEncoder::MaxDistanceSquared(size_t dims,
                                              int64_t max_abs_coord) {
  return static_cast<int64_t>(dims) * (2 * max_abs_coord) * (2 * max_abs_coord);
}

}  // namespace ppdbscan
