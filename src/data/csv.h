#ifndef PPDBSCAN_DATA_CSV_H_
#define PPDBSCAN_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/generators.h"
#include "dbscan/dataset.h"

namespace ppdbscan {

/// CSV interchange for datasets and clustering results, so real tables can
/// be run through the protocols (tools/ppdbscan_cli) and results inspected
/// with standard tooling.
///
/// Format: one record per line, numeric columns separated by commas.
/// Optional header line (auto-detected: any non-numeric cell). An optional
/// trailing "label" column can carry generator ground truth. Parsing is
/// strict — ragged rows, empty numeric cells, or non-numeric data are
/// kInvalidArgument with a line number in the message.

/// Parses CSV text into a continuous-coordinate dataset. If
/// `label_column` is true the last column is read into `true_labels`
/// (integers; -1 = noise).
Result<RawDataset> ParseCsvDataset(const std::string& text,
                                   bool label_column = false);

/// Reads a CSV file from disk via ParseCsvDataset.
Result<RawDataset> LoadCsvDataset(const std::string& path,
                                  bool label_column = false);

/// Serializes points (and, when present, true labels) back to CSV with a
/// header row. Round-trips with ParseCsvDataset.
std::string FormatCsvDataset(const RawDataset& dataset);

/// Writes "index,label" rows for a clustering result (kNoise as -1).
std::string FormatLabelsCsv(const Labels& labels);

/// Writes a string to a file (kUnavailable on I/O failure).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace ppdbscan

#endif  // PPDBSCAN_DATA_CSV_H_
