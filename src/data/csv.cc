#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ppdbscan {

namespace {

/// Splits one CSV line on commas (no quoting — numeric data only).
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool ParseDouble(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(cell.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Result<RawDataset> ParseCsvDataset(const std::string& text,
                                   bool label_column) {
  RawDataset dataset;
  dataset.dims = 0;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  bool first_data_line = true;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> cells = SplitLine(line);

    // Header auto-detection: a first line with any non-numeric cell.
    if (first_data_line) {
      bool numeric = true;
      double ignored;
      for (const std::string& cell : cells) {
        if (!ParseDouble(cell, &ignored)) {
          numeric = false;
          break;
        }
      }
      if (!numeric) continue;  // header line; skip
    }

    size_t value_cells = cells.size() - (label_column ? 1 : 0);
    if (value_cells < 1) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": no coordinate columns");
    }
    if (first_data_line) {
      dataset.dims = value_cells;
      first_data_line = false;
    } else if (value_cells != dataset.dims) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(dataset.dims + (label_column ? 1 : 0)) +
          " columns, got " + std::to_string(cells.size()));
    }

    std::vector<double> point(value_cells);
    for (size_t i = 0; i < value_cells; ++i) {
      if (!ParseDouble(cells[i], &point[i])) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": non-numeric cell '" + cells[i] +
                                       "'");
      }
    }
    dataset.points.push_back(std::move(point));
    if (label_column) {
      double label;
      if (!ParseDouble(cells.back(), &label) ||
          label != static_cast<int>(label)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": label column must be an integer");
      }
      dataset.true_labels.push_back(static_cast<int>(label));
    }
  }
  if (dataset.points.empty()) {
    return Status::InvalidArgument("no data rows in CSV input");
  }
  return dataset;
}

Result<RawDataset> LoadCsvDataset(const std::string& path,
                                  bool label_column) {
  std::ifstream file(path);
  if (!file) {
    return Status::Unavailable("cannot open '" + path +
                               "': " + std::strerror(errno));
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseCsvDataset(content.str(), label_column);
}

std::string FormatCsvDataset(const RawDataset& dataset) {
  std::ostringstream out;
  const bool labels = dataset.true_labels.size() == dataset.points.size();
  for (size_t d = 0; d < dataset.dims; ++d) {
    if (d > 0) out << ',';
    out << "x" << d;
  }
  if (labels) out << ",label";
  out << '\n';
  out.precision(17);
  for (size_t i = 0; i < dataset.points.size(); ++i) {
    for (size_t d = 0; d < dataset.dims; ++d) {
      if (d > 0) out << ',';
      out << dataset.points[i][d];
    }
    if (labels) out << ',' << dataset.true_labels[i];
    out << '\n';
  }
  return out.str();
}

std::string FormatLabelsCsv(const Labels& labels) {
  std::ostringstream out;
  out << "index,label\n";
  for (size_t i = 0; i < labels.size(); ++i) {
    out << i << ',' << labels[i] << '\n';
  }
  return out.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) {
    return Status::Unavailable("cannot create '" + path +
                               "': " + std::strerror(errno));
  }
  file << content;
  file.flush();
  if (!file) {
    return Status::Unavailable("short write to '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace ppdbscan
