#ifndef PPDBSCAN_DATA_PARTITIONERS_H_
#define PPDBSCAN_DATA_PARTITIONERS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dbscan/dataset.h"

namespace ppdbscan {

/// Horizontally partitioned data (paper Figure 2): each party owns a subset
/// of complete records. `alice_ids`/`bob_ids` map party-local indices back
/// to positions in the original dataset so experiments can compare against
/// the centralized clustering.
struct HorizontalPartition {
  Dataset alice;
  Dataset bob;
  std::vector<size_t> alice_ids;
  std::vector<size_t> bob_ids;
};

/// Random horizontal split assigning each record to Alice with probability
/// `alice_fraction` (at least one record is forced to each party when the
/// input has >= 2 records).
Result<HorizontalPartition> PartitionHorizontal(const Dataset& dataset,
                                                SecureRng& rng,
                                                double alice_fraction);

/// Deterministic spatial horizontal split: records sorted by (coordinate
/// `split_dim`, then original index) go to Alice up to `alice_fraction` of
/// the total, the rest to Bob. This models the geographically partitioned
/// deployments the paper motivates (each hospital serves a region) — under
/// a random split every point sits near peer data and the eps-boundary
/// pruning planner (core/plan.h) has nothing to prune; under a spatial
/// split only the strip within Eps of the other party's bounding box does
/// protocol work. Requires >= 2 records and a valid split_dim.
Result<HorizontalPartition> PartitionHorizontalSpatial(const Dataset& dataset,
                                                       size_t split_dim,
                                                       double alice_fraction);

/// Vertically partitioned data (paper Figure 3): Alice owns attributes
/// [0, split_dim), Bob owns [split_dim, dims). Row order is shared and
/// identical to the original dataset.
struct VerticalPartition {
  Dataset alice;
  Dataset bob;
  size_t split_dim = 0;
};

Result<VerticalPartition> PartitionVertical(const Dataset& dataset,
                                            size_t split_dim);

/// One party's view of arbitrarily partitioned data (paper Figure 4): all
/// records, with only the owned attribute cells populated. The ownership
/// mask is public (both parties know who holds which cell), matching §4.4's
/// model; only the values are private.
struct ArbitraryPartyView {
  size_t dims = 0;
  std::vector<std::vector<int64_t>> values;  // unowned cells are zero
  std::vector<std::vector<uint8_t>> owned;   // 1 where this party owns
};

struct ArbitraryPartition {
  ArbitraryPartyView alice;
  ArbitraryPartyView bob;
};

/// Random cell-level split assigning each attribute cell to Alice with
/// probability `alice_cell_fraction`.
Result<ArbitraryPartition> PartitionArbitrary(const Dataset& dataset,
                                              SecureRng& rng,
                                              double alice_cell_fraction);

}  // namespace ppdbscan

#endif  // PPDBSCAN_DATA_PARTITIONERS_H_
