#ifndef PPDBSCAN_DATA_GENERATORS_H_
#define PPDBSCAN_DATA_GENERATORS_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace ppdbscan {

/// A dataset in continuous coordinates, before fixed-point encoding, with
/// generator-assigned ground-truth component labels (used only for
/// reporting — DBSCAN itself never sees them).
struct RawDataset {
  size_t dims = 2;
  std::vector<std::vector<double>> points;
  std::vector<int> true_labels;  // -1 for generated noise

  size_t size() const { return points.size(); }
};

/// Isotropic Gaussian blobs: `num_clusters` centers uniform in
/// [-box, box]^dims with at least 4*stddev separation, `points_per_cluster`
/// samples each. The workload where DBSCAN and k-means agree.
RawDataset MakeBlobs(SecureRng& rng, size_t num_clusters,
                     size_t points_per_cluster, size_t dims, double stddev,
                     double box);

/// Two interleaving half-moons in 2-D — the arbitrary-shape workload the
/// paper's introduction motivates (DBSCAN separates them, k-means cannot).
RawDataset MakeTwoMoons(SecureRng& rng, size_t points_per_moon,
                        double noise_stddev);

/// Concentric rings in 2-D — a cluster completely surrounded by another,
/// the second motivating shape from §1.
RawDataset MakeRings(SecureRng& rng, size_t points_per_ring,
                     const std::vector<double>& radii, double noise_stddev);

/// A dumbbell: two dense blobs joined by a thin bridge of points. The
/// bridge is the workload that distinguishes the paper's horizontal
/// protocol from centralized DBSCAN when bridge points belong to the other
/// party (experiment E4/E7).
RawDataset MakeDumbbell(SecureRng& rng, size_t points_per_blob,
                        size_t bridge_points, double separation,
                        double stddev);

/// Appends `count` uniform noise points over [-box, box]^dims with label -1.
void AddUniformNoise(RawDataset& dataset, SecureRng& rng, size_t count,
                     double box);

}  // namespace ppdbscan

#endif  // PPDBSCAN_DATA_GENERATORS_H_
