#ifndef PPDBSCAN_DATA_FIXED_POINT_H_
#define PPDBSCAN_DATA_FIXED_POINT_H_

#include <cstdint>

#include "common/status.h"
#include "data/generators.h"
#include "dbscan/dataset.h"

namespace ppdbscan {

/// Deterministic double → integer grid encoder. All parties must agree on
/// the scale: protocol arithmetic (Paillier plaintexts, YMPP domains) runs
/// on the integer images, and DBSCAN's output is invariant as long as every
/// coordinate and Eps go through the same encoder.
///
/// A coarse scale (e.g. 8) keeps squared distances small, which is what
/// the Θ(n0)-cost YMPP comparator needs; a fine scale (e.g. 10^6) makes
/// quantization negligible for the blinded comparator. The encoder reports
/// kOutOfRange when a scaled value leaves the Dataset coordinate bound.
class FixedPointEncoder {
 public:
  explicit FixedPointEncoder(double scale);

  double scale() const { return scale_; }

  /// round(v * scale); kOutOfRange if it exceeds Dataset::kMaxAbsCoordinate.
  Result<int64_t> EncodeScalar(double v) const;

  /// Encodes every point; fails on the first out-of-range coordinate.
  Result<Dataset> Encode(const RawDataset& raw) const;

  /// Squared integer image of a radius: round(eps * scale)².
  Result<int64_t> EncodeEpsSquared(double eps) const;

  /// Upper bound on the squared distance between any two in-range points
  /// of dimension `dims` — the magnitude bound the comparators need.
  static int64_t MaxDistanceSquared(size_t dims, int64_t max_abs_coord);

 private:
  double scale_;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_DATA_FIXED_POINT_H_
