#include "data/partitioners.h"

#include <algorithm>

namespace ppdbscan {

Result<HorizontalPartition> PartitionHorizontal(const Dataset& dataset,
                                                SecureRng& rng,
                                                double alice_fraction) {
  if (alice_fraction < 0.0 || alice_fraction > 1.0) {
    return Status::InvalidArgument("alice_fraction must be in [0, 1]");
  }
  HorizontalPartition out{Dataset(dataset.dims()), Dataset(dataset.dims()),
                          {}, {}};
  for (size_t i = 0; i < dataset.size(); ++i) {
    bool to_alice = rng.NextDouble() < alice_fraction;
    // Force both parties non-empty on the last records if needed.
    if (i + 1 == dataset.size() && out.alice_ids.empty()) to_alice = true;
    if (i + 1 == dataset.size() && out.bob_ids.empty() &&
        !out.alice_ids.empty()) {
      to_alice = false;
    }
    if (to_alice) {
      PPD_RETURN_IF_ERROR(out.alice.Add(dataset.point(i)));
      out.alice_ids.push_back(i);
    } else {
      PPD_RETURN_IF_ERROR(out.bob.Add(dataset.point(i)));
      out.bob_ids.push_back(i);
    }
  }
  return out;
}

Result<HorizontalPartition> PartitionHorizontalSpatial(const Dataset& dataset,
                                                       size_t split_dim,
                                                       double alice_fraction) {
  if (alice_fraction < 0.0 || alice_fraction > 1.0) {
    return Status::InvalidArgument("alice_fraction must be in [0, 1]");
  }
  if (split_dim >= dataset.dims()) {
    return Status::InvalidArgument("split_dim out of range");
  }
  if (dataset.size() < 2) {
    return Status::InvalidArgument("spatial split needs >= 2 records");
  }
  std::vector<size_t> order(dataset.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const int64_t ca = dataset.point(a)[split_dim];
    const int64_t cb = dataset.point(b)[split_dim];
    if (ca != cb) return ca < cb;
    return a < b;
  });
  size_t alice_count = static_cast<size_t>(
      static_cast<double>(dataset.size()) * alice_fraction);
  // Both parties non-empty, mirroring PartitionHorizontal's guarantee.
  if (alice_count == 0) alice_count = 1;
  if (alice_count == dataset.size()) alice_count = dataset.size() - 1;

  HorizontalPartition out{Dataset(dataset.dims()), Dataset(dataset.dims()),
                          {}, {}};
  for (size_t r = 0; r < order.size(); ++r) {
    const size_t i = order[r];
    if (r < alice_count) {
      PPD_RETURN_IF_ERROR(out.alice.Add(dataset.point(i)));
      out.alice_ids.push_back(i);
    } else {
      PPD_RETURN_IF_ERROR(out.bob.Add(dataset.point(i)));
      out.bob_ids.push_back(i);
    }
  }
  return out;
}

Result<VerticalPartition> PartitionVertical(const Dataset& dataset,
                                            size_t split_dim) {
  if (split_dim == 0 || split_dim >= dataset.dims()) {
    return Status::InvalidArgument(
        "split_dim must leave both parties at least one attribute");
  }
  VerticalPartition out{Dataset(split_dim), Dataset(dataset.dims() - split_dim),
                        split_dim};
  for (size_t i = 0; i < dataset.size(); ++i) {
    const std::vector<int64_t>& p = dataset.point(i);
    PPD_RETURN_IF_ERROR(out.alice.Add(
        std::vector<int64_t>(p.begin(), p.begin() + split_dim)));
    PPD_RETURN_IF_ERROR(
        out.bob.Add(std::vector<int64_t>(p.begin() + split_dim, p.end())));
  }
  return out;
}

Result<ArbitraryPartition> PartitionArbitrary(const Dataset& dataset,
                                              SecureRng& rng,
                                              double alice_cell_fraction) {
  if (alice_cell_fraction < 0.0 || alice_cell_fraction > 1.0) {
    return Status::InvalidArgument("alice_cell_fraction must be in [0, 1]");
  }
  ArbitraryPartition out;
  out.alice.dims = out.bob.dims = dataset.dims();
  for (size_t i = 0; i < dataset.size(); ++i) {
    const std::vector<int64_t>& p = dataset.point(i);
    std::vector<int64_t> av(p.size(), 0), bv(p.size(), 0);
    std::vector<uint8_t> ao(p.size(), 0), bo(p.size(), 0);
    for (size_t t = 0; t < p.size(); ++t) {
      if (rng.NextDouble() < alice_cell_fraction) {
        av[t] = p[t];
        ao[t] = 1;
      } else {
        bv[t] = p[t];
        bo[t] = 1;
      }
    }
    out.alice.values.push_back(std::move(av));
    out.alice.owned.push_back(std::move(ao));
    out.bob.values.push_back(std::move(bv));
    out.bob.owned.push_back(std::move(bo));
  }
  return out;
}

}  // namespace ppdbscan
