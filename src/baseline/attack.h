#ifndef PPDBSCAN_BASELINE_ATTACK_H_
#define PPDBSCAN_BASELINE_ATTACK_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace ppdbscan {

/// Monte-Carlo quantification of the Figure 1 linkage attack.
///
/// Setting: the attacker (Bob) holds `centers` (his points) and learned
/// that a victim record lies within `eps` of each center in
/// `containing_indices`. Under the LINKED (Kumar [14]) disclosure the
/// feasible region for the victim record is the INTERSECTION of those
/// disks; under the paper's UNLINKED disclosure Bob only knows each disk
/// contains *some* victim record, so any point of the UNION is consistent
/// with the victim's location.
struct AttackEstimate {
  double linked_area = 0;     // area of the disk intersection
  double unlinked_area = 0;   // area of the disk union
  double box_area = 0;        // area of the sampled prior region
  size_t samples = 0;

  /// Localization gain of the linkage attack: how much smaller the linked
  /// feasible region is than the unlinked one (>= 1; higher = worse leak).
  double LocalizationFactor() const {
    return linked_area > 0 ? unlinked_area / linked_area : 0.0;
  }
};

/// Estimates feasible-region areas by sampling `samples` points uniformly
/// over [box_min, box_max]² (2-D attack, matching Figure 1).
AttackEstimate EstimateFeasibleRegion(
    const std::vector<std::vector<double>>& centers,
    const std::vector<size_t>& containing_indices, double eps, double box_min,
    double box_max, size_t samples, SecureRng& rng);

}  // namespace ppdbscan

#endif  // PPDBSCAN_BASELINE_ATTACK_H_
