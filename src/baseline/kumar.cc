#include "baseline/kumar.h"

#include "core/distance_protocols.h"
#include "core/wire.h"
#include "net/message.h"
#include "smc/comparator.h"

namespace ppdbscan {

Result<LinkedNeighbourhoods> KumarDisclosureQuerier(
    Channel& channel, const SmcSession& session, const Dataset& own,
    const ProtocolOptions& options, SecureRng& rng) {
  PPD_ASSIGN_OR_RETURN(
      std::unique_ptr<SecureComparator> comparator,
      CreateComparator(options.comparator, session, rng));
  // Announce how many linked queries follow.
  ByteWriter hello;
  hello.PutU32(static_cast<uint32_t>(own.size()));
  PPD_RETURN_IF_ERROR(SendMessage(channel, wire::kVtHello, hello));

  LinkedNeighbourhoods out;
  out.contains.resize(own.size());
  for (size_t k = 0; k < own.size(); ++k) {
    PPD_RETURN_IF_ERROR(SendMessage(channel, wire::kHzQueryBasic,
                                    std::vector<uint8_t>()));
    std::vector<bool> bits;
    PPD_ASSIGN_OR_RETURN(
        size_t hits,
        HdpBatchDriver(channel, session, *comparator, own.point(k),
                       options.params.eps_squared, rng, &bits));
    (void)hits;
    out.contains[k] = std::move(bits);
  }
  PPD_RETURN_IF_ERROR(
      SendMessage(channel, wire::kHzScanDone, std::vector<uint8_t>()));
  return out;
}

Status KumarDisclosureResponder(Channel& channel, const SmcSession& session,
                                const Dataset& own,
                                const ProtocolOptions& options,
                                SecureRng& rng) {
  (void)options;
  PPD_ASSIGN_OR_RETURN(
      std::unique_ptr<SecureComparator> comparator,
      CreateComparator(options.comparator, session, rng));
  PPD_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                       ExpectMessage(channel, wire::kVtHello));
  ByteReader reader(payload);
  PPD_ASSIGN_OR_RETURN(uint32_t queries, reader.GetU32());
  for (uint32_t k = 0; k < queries; ++k) {
    PPD_ASSIGN_OR_RETURN(std::vector<uint8_t> tag,
                         ExpectMessage(channel, wire::kHzQueryBasic));
    (void)tag;
    // The defining difference from Algorithm 4: no permutation, so the
    // querier's bits are linkable across queries.
    PPD_RETURN_IF_ERROR(HdpBatchResponder(channel, session, *comparator, own,
                                          rng, /*subset=*/nullptr,
                                          /*permute=*/false));
  }
  PPD_ASSIGN_OR_RETURN(std::vector<uint8_t> done,
                       ExpectMessage(channel, wire::kHzScanDone));
  (void)done;
  return Status::Ok();
}

}  // namespace ppdbscan
