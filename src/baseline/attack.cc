#include "baseline/attack.h"

#include "common/status.h"

namespace ppdbscan {

AttackEstimate EstimateFeasibleRegion(
    const std::vector<std::vector<double>>& centers,
    const std::vector<size_t>& containing_indices, double eps, double box_min,
    double box_max, size_t samples, SecureRng& rng) {
  PPD_CHECK_MSG(box_max > box_min, "empty sampling box");
  PPD_CHECK_MSG(!containing_indices.empty(),
                "attack needs at least one neighbourhood");
  const double eps_sq = eps * eps;
  const double side = box_max - box_min;

  size_t in_intersection = 0;
  size_t in_union = 0;
  for (size_t s = 0; s < samples; ++s) {
    double x = box_min + rng.NextDouble() * side;
    double y = box_min + rng.NextDouble() * side;
    bool all = true;
    bool any = false;
    for (size_t idx : containing_indices) {
      const std::vector<double>& c = centers[idx];
      double dx = x - c[0];
      double dy = y - c[1];
      bool inside = dx * dx + dy * dy <= eps_sq;
      all = all && inside;
      any = any || inside;
    }
    if (all) ++in_intersection;
    if (any) ++in_union;
  }

  AttackEstimate out;
  out.box_area = side * side;
  out.samples = samples;
  out.linked_area =
      out.box_area * static_cast<double>(in_intersection) / samples;
  out.unlinked_area = out.box_area * static_cast<double>(in_union) / samples;
  return out;
}

}  // namespace ppdbscan
