#ifndef PPDBSCAN_BASELINE_KUMAR_H_
#define PPDBSCAN_BASELINE_KUMAR_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/options.h"
#include "dbscan/dataset.h"
#include "net/channel.h"
#include "smc/session.h"

namespace ppdbscan {

/// The disclosure regime of Kumar & Rangan [14] that §1/Figure 1 of the
/// paper argues against: the querying party learns, for each of its own
/// points, WHICH of the peer's records (by a stable index) lie in the
/// Eps-neighbourhood. Because the peer index is stable across queries, the
/// querier can intersect neighbourhoods — the Figure 1 linkage attack.
/// The paper's protocols destroy this linkage with per-query permutation;
/// bench_fig1_attack quantifies the difference.
///
/// The cryptographic machinery is the same HDP + secure-comparison stack;
/// only the permutation is disabled and the bits are linkable.
struct LinkedNeighbourhoods {
  /// contains[k][i] == true iff peer record i lies within Eps of own
  /// point k. Peer indices are stable across k — the leak.
  std::vector<std::vector<bool>> contains;
};

/// Querier side (the attacker's view).
Result<LinkedNeighbourhoods> KumarDisclosureQuerier(
    Channel& channel, const SmcSession& session, const Dataset& own,
    const ProtocolOptions& options, SecureRng& rng);

/// Victim side: serves `peer_query_count` linked (unpermuted) HDP batches.
Status KumarDisclosureResponder(Channel& channel, const SmcSession& session,
                                const Dataset& own,
                                const ProtocolOptions& options,
                                SecureRng& rng);

}  // namespace ppdbscan

#endif  // PPDBSCAN_BASELINE_KUMAR_H_
