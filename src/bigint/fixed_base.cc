#include "bigint/fixed_base.h"

#include <algorithm>

#include "common/status.h"

namespace ppdbscan {

FixedBaseTable::FixedBaseTable(const MontgomeryCtx& ctx, const BigInt& base,
                               size_t max_exponent_bits, int window_bits)
    : ctx_(&ctx),
      base_(base),
      max_exponent_bits_(std::max<size_t>(max_exponent_bits, 1)) {
  PPD_CHECK_MSG(!base.IsNegative(), "FixedBaseTable base must be >= 0");
  window_bits_ =
      window_bits > 0 ? window_bits : (max_exponent_bits_ >= 768 ? 5 : 4);
  PPD_CHECK(window_bits_ >= 1 && window_bits_ <= 8);
  const size_t w = static_cast<size_t>(window_bits_);
  windows_ = (max_exponent_bits_ + w - 1) / w;
  const size_t per = (size_t{1} << w) - 1;
  const size_t k = ctx.k_;
  entries_.resize(windows_ * per * k);

  // Window base b_i = base^(2^(w·i)), carried across rows by w squarings.
  std::vector<Limb> wb = ctx.MulLimbs(base.limbs(), ctx.r2_);  // ToMont
  for (size_t i = 0; i < windows_; ++i) {
    Limb* row = entries_.data() + i * per * k;
    std::copy(wb.begin(), wb.begin() + static_cast<long>(k), row);  // d = 1
    std::vector<Limb> cur = wb;
    for (size_t d = 2; d <= per; ++d) {
      cur = ctx.MulLimbs(cur, wb);
      std::copy(cur.begin(), cur.begin() + static_cast<long>(k),
                row + (d - 1) * k);
    }
    if (i + 1 < windows_) {
      for (size_t s = 0; s < w; ++s) wb = ctx.SqrLimbs(wb);
    }
  }
}

BigInt FixedBaseTable::ExpFixedBase(const BigInt& exponent) const {
  PPD_CHECK_MSG(!exponent.IsNegative(), "negative exponent");
  const size_t bits = exponent.BitLength();
  if (bits > max_exponent_bits_) return ctx_->Exp(base_, exponent);

  const size_t w = static_cast<size_t>(window_bits_);
  const size_t per = (size_t{1} << w) - 1;
  const size_t k = ctx_->k_;
  // Accumulator starts as Montgomery 1; each nonzero exponent digit
  // contributes one product with its precomputed power — no squarings.
  std::vector<Limb> acc(ctx_->one_);
  acc.resize(k, 0);
  for (size_t i = 0; i * w < bits; ++i) {
    uint32_t d = 0;
    for (size_t b = w; b-- > 0;) {
      const size_t pos = i * w + b;
      d = (d << 1) | ((pos < bits && exponent.TestBit(pos)) ? 1u : 0u);
    }
    if (d == 0) continue;
    const Limb* e = entries_.data() + (i * per + d - 1) * k;
    acc = ctx_->MulLimbs(acc, std::vector<Limb>(e, e + k));
  }
  // Out of the Montgomery domain — same exit as MontgomeryCtx::Exp, so the
  // returned residue is canonical and comparisons are exact.
  return BigInt::FromLimbs(ctx_->MulLimbs(acc, {1u}), 1);
}

}  // namespace ppdbscan
