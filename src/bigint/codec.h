#ifndef PPDBSCAN_BIGINT_CODEC_H_
#define PPDBSCAN_BIGINT_CODEC_H_

#include "bigint/bigint.h"
#include "common/serialize.h"

namespace ppdbscan {

/// Appends a signed BigInt: one sign byte (0 zero, 1 positive, 2 negative)
/// followed by the length-prefixed big-endian magnitude.
inline void WriteBigInt(ByteWriter& out, const BigInt& v) {
  out.PutU8(v.sign() == 0 ? 0 : (v.sign() > 0 ? 1 : 2));
  out.PutBytes(v.ToBytes());
}

/// Reads a BigInt written by WriteBigInt; kDataLoss on malformed input.
inline Result<BigInt> ReadBigInt(ByteReader& in) {
  PPD_ASSIGN_OR_RETURN(uint8_t sign, in.GetU8());
  if (sign > 2) return Status::DataLoss("invalid BigInt sign byte");
  PPD_ASSIGN_OR_RETURN(std::vector<uint8_t> mag, in.GetBytes());
  BigInt v = BigInt::FromBytes(mag);
  if (sign == 0 && !v.IsZero()) {
    return Status::DataLoss("zero sign with nonzero magnitude");
  }
  if (sign != 0 && v.IsZero()) {
    return Status::DataLoss("nonzero sign with zero magnitude");
  }
  return sign == 2 ? -v : v;
}

}  // namespace ppdbscan

#endif  // PPDBSCAN_BIGINT_CODEC_H_
