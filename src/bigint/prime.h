#ifndef PPDBSCAN_BIGINT_PRIME_H_
#define PPDBSCAN_BIGINT_PRIME_H_

#include <cstddef>

#include "bigint/bigint.h"
#include "common/random.h"

namespace ppdbscan {

/// Miller-Rabin primality test with `rounds` random bases (error probability
/// <= 4^-rounds). Deterministic on values below 3,215,031,751 via the fixed
/// base set {2, 3, 5, 7}.
bool IsProbablePrime(const BigInt& n, SecureRng& rng, int rounds = 40);

/// Generates a random probable prime with exactly `bits` bits and the two
/// top bits set (so that a product of two such primes has exactly 2*bits
/// bits, as RSA/Paillier key generation requires). `bits` must be >= 16.
/// `mr_rounds` trades confidence for speed (YMPP generates a fresh prime
/// per comparison and only needs distinctness, not cryptographic strength).
BigInt GeneratePrime(SecureRng& rng, size_t bits, int mr_rounds = 28);

}  // namespace ppdbscan

#endif  // PPDBSCAN_BIGINT_PRIME_H_
