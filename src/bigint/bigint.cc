#include "bigint/bigint.h"

#include <algorithm>
#include <bit>
#include <ostream>

#include "bigint/kernels.h"
#include "bigint/montgomery.h"

namespace ppdbscan {

namespace {

using Limbs = std::vector<Limb>;

constexpr DoubleLimb kBase = DoubleLimb{1} << kLimbBits;
constexpr size_t kKaratsubaThreshold = 24;  // limbs

void TrimMag(Limbs& a) {
  while (!a.empty() && a.back() == 0) a.pop_back();
}

int CmpMag(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Limbs AddMag(const Limbs& a, const Limbs& b) {
  const LimbKernels& kern = ActiveLimbKernels();
  const Limbs& big = a.size() >= b.size() ? a : b;
  const Limbs& small = a.size() >= b.size() ? b : a;
  Limbs out(big.size() + 1, 0);
  Limb carry = kern.add_n(out.data(), big.data(), small.data(), small.size());
  std::copy(big.begin() + static_cast<long>(small.size()), big.end(),
            out.begin() + static_cast<long>(small.size()));
  out[big.size()] = PropagateCarry(out.data() + small.size(),
                                   big.size() - small.size(), carry);
  TrimMag(out);
  return out;
}

// Requires a >= b (so a.size() >= b.size() for trimmed magnitudes).
Limbs SubMag(const Limbs& a, const Limbs& b) {
  const LimbKernels& kern = ActiveLimbKernels();
  Limbs out(a.size(), 0);
  Limb borrow = kern.sub_n(out.data(), a.data(), b.data(), b.size());
  std::copy(a.begin() + static_cast<long>(b.size()), a.end(),
            out.begin() + static_cast<long>(b.size()));
  borrow =
      PropagateBorrow(out.data() + b.size(), a.size() - b.size(), borrow);
  PPD_CHECK_MSG(borrow == 0, "SubMag underflow");
  TrimMag(out);
  return out;
}

void MulSchoolbook(const Limb* a, size_t an, const Limb* b, size_t bn,
                   Limb* out, const LimbKernels& kern) {
  // out[0 .. an+bn) must be zero-initialized by the caller; an, bn >= 1.
  out[bn] = kern.mul_1(out, b, bn, a[0]);
  for (size_t i = 1; i < an; ++i) {
    out[i + bn] = kern.addmul_1(out + i, b, bn, a[i]);
  }
}

Limbs MulMag(const Limbs& a, const Limbs& b);

// Karatsuba split at h limbs: a = a1*B^h + a0.
Limbs MulKaratsuba(const Limbs& a, const Limbs& b) {
  size_t h = std::min(a.size(), b.size()) / 2;
  Limbs a0(a.begin(), a.begin() + h);
  Limbs a1(a.begin() + h, a.end());
  Limbs b0(b.begin(), b.begin() + h);
  Limbs b1(b.begin() + h, b.end());
  TrimMag(a0);
  TrimMag(b0);
  Limbs z0 = MulMag(a0, b0);
  Limbs z2 = MulMag(a1, b1);
  Limbs z1 = MulMag(AddMag(a0, a1), AddMag(b0, b1));
  z1 = SubMag(z1, AddMag(z0, z2));
  // result = z2 << 2h | z1 << h | z0  (limb shifts)
  const LimbKernels& kern = ActiveLimbKernels();
  Limbs out(a.size() + b.size() + 1, 0);
  auto add_at = [&out, &kern](const Limbs& v, size_t shift) {
    Limb carry =
        kern.add_n(out.data() + shift, out.data() + shift, v.data(), v.size());
    PPD_CHECK(PropagateCarry(out.data() + shift + v.size(),
                             out.size() - shift - v.size(), carry) == 0);
  };
  add_at(z0, 0);
  add_at(z1, h);
  add_at(z2, 2 * h);
  TrimMag(out);
  return out;
}

Limbs MulMag(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) >= kKaratsubaThreshold) {
    return MulKaratsuba(a, b);
  }
  Limbs out(a.size() + b.size(), 0);
  MulSchoolbook(a.data(), a.size(), b.data(), b.size(), out.data(),
                ActiveLimbKernels());
  TrimMag(out);
  return out;
}

Limbs ShlMag(const Limbs& a, size_t bits) {
  if (a.empty()) return {};
  size_t limb_shift = bits / kLimbBits;
  size_t bit_shift = bits % kLimbBits;
  Limbs out(a.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    DoubleLimb v = static_cast<DoubleLimb>(a[i]) << bit_shift;
    out[i + limb_shift] |= static_cast<Limb>(v);
    out[i + limb_shift + 1] |= static_cast<Limb>(v >> kLimbBits);
  }
  TrimMag(out);
  return out;
}

Limbs ShrMag(const Limbs& a, size_t bits) {
  size_t limb_shift = bits / kLimbBits;
  size_t bit_shift = bits % kLimbBits;
  if (limb_shift >= a.size()) return {};
  Limbs out(a.size() - limb_shift, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    DoubleLimb v = a[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.size()) {
      v |= static_cast<DoubleLimb>(a[i + limb_shift + 1])
           << (kLimbBits - bit_shift);
    }
    out[i] = static_cast<Limb>(v);
  }
  TrimMag(out);
  return out;
}

// Knuth Algorithm D. Requires non-empty v. Produces u = q*v + r, r < v.
void DivModMag(const Limbs& u_in, const Limbs& v_in, Limbs* q_out,
               Limbs* r_out) {
  PPD_CHECK_MSG(!v_in.empty(), "division by zero magnitude");
  if (CmpMag(u_in, v_in) < 0) {
    if (q_out) q_out->clear();
    if (r_out) *r_out = u_in;
    return;
  }
  if (v_in.size() == 1) {
    Limb d = v_in[0];
    Limb rem = 0;
    Limbs q(u_in.size(), 0);
    for (size_t i = u_in.size(); i-- > 0;) {
      DoubleLimb cur = (static_cast<DoubleLimb>(rem) << kLimbBits) | u_in[i];
      q[i] = static_cast<Limb>(cur / d);
      rem = static_cast<Limb>(cur % d);
    }
    TrimMag(q);
    if (q_out) *q_out = std::move(q);
    if (r_out) {
      r_out->clear();
      if (rem != 0) r_out->push_back(rem);
    }
    return;
  }

  const int s = std::countl_zero(v_in.back());
  Limbs v = ShlMag(v_in, static_cast<size_t>(s));
  Limbs u = ShlMag(u_in, static_cast<size_t>(s));
  const size_t n = v.size();
  PPD_CHECK(u.size() >= n);
  const size_t m = u.size() - n;
  u.push_back(0);  // u[m+n] sentinel

  Limbs q(m + 1, 0);
  for (size_t j = m + 1; j-- > 0;) {
    DoubleLimb num =
        (static_cast<DoubleLimb>(u[j + n]) << kLimbBits) | u[j + n - 1];
    DoubleLimb qhat = num / v[n - 1];
    DoubleLimb rhat = num % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] >
               ((rhat << kLimbBits) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-and-subtract qhat * v from u[j .. j+n].
    DoubleLimb carry = 0;
    SignedDoubleLimb borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      DoubleLimb p = qhat * v[i] + carry;
      carry = p >> kLimbBits;
      SignedDoubleLimb t =
          static_cast<SignedDoubleLimb>(u[i + j]) -
          static_cast<SignedDoubleLimb>(static_cast<Limb>(p)) - borrow;
      if (t < 0) {
        t += static_cast<SignedDoubleLimb>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(t);
    }
    SignedDoubleLimb t = static_cast<SignedDoubleLimb>(u[j + n]) -
                         static_cast<SignedDoubleLimb>(carry) - borrow;
    u[j + n] = static_cast<Limb>(t);
    if (t < 0) {
      // qhat was one too large: add v back.
      --qhat;
      DoubleLimb c = 0;
      for (size_t i = 0; i < n; ++i) {
        DoubleLimb sum = static_cast<DoubleLimb>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<Limb>(sum);
        c = sum >> kLimbBits;
      }
      u[j + n] = static_cast<Limb>(u[j + n] + c);
    }
    q[j] = static_cast<Limb>(qhat);
  }

  if (q_out) {
    TrimMag(q);
    *q_out = std::move(q);
  }
  if (r_out) {
    Limbs r(u.begin(), u.begin() + static_cast<long>(n));
    TrimMag(r);
    *r_out = ShrMag(r, static_cast<size_t>(s));
  }
}

int DigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Appends the limbs of a native 64-bit magnitude (little-endian).
void PushU64(Limbs& limbs, uint64_t mag) {
  while (mag != 0) {
    limbs.push_back(static_cast<Limb>(mag));
    if constexpr (kLimbBits >= 64) {
      mag = 0;
    } else {
      mag >>= kLimbBits;
    }
  }
}

}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  sign_ = value < 0 ? -1 : 1;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t mag = value < 0 ? ~static_cast<uint64_t>(value) + 1
                           : static_cast<uint64_t>(value);
  PushU64(limbs_, mag);
}

BigInt BigInt::FromU64(uint64_t value) {
  BigInt out;
  if (value == 0) return out;
  out.sign_ = 1;
  PushU64(out.limbs_, value);
  return out;
}

BigInt BigInt::FromLimbs(std::vector<Limb> limbs, int sign) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.sign_ = sign;
  out.Normalize();
  return out;
}

void BigInt::Normalize() {
  TrimMag(limbs_);
  if (limbs_.empty()) sign_ = 0;
  PPD_CHECK(limbs_.empty() || sign_ != 0);
}

Result<BigInt> BigInt::FromDecimal(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty decimal string");
  bool negative = false;
  size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) return Status::InvalidArgument("sign-only string");
  BigInt out;
  while (pos < text.size()) {
    size_t take = std::min<size_t>(9, text.size() - pos);
    uint32_t chunk = 0;
    uint32_t scale = 1;
    for (size_t i = 0; i < take; ++i) {
      int d = DigitValue(text[pos + i]);
      if (d < 0 || d > 9) {
        return Status::InvalidArgument("invalid decimal digit");
      }
      chunk = chunk * 10 + static_cast<uint32_t>(d);
      scale *= 10;
    }
    out = out * BigInt(static_cast<int64_t>(scale)) +
          BigInt(static_cast<int64_t>(chunk));
    pos += take;
  }
  if (negative && !out.IsZero()) out.sign_ = -1;
  return out;
}

Result<BigInt> BigInt::FromHex(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty hex string");
  bool negative = false;
  size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) return Status::InvalidArgument("sign-only string");
  BigInt out;
  for (; pos < text.size(); ++pos) {
    int d = DigitValue(text[pos]);
    if (d < 0) return Status::InvalidArgument("invalid hex digit");
    out = (out << 4) + BigInt(d);
  }
  if (negative && !out.IsZero()) out.sign_ = -1;
  return out;
}

BigInt BigInt::FromBytes(const std::vector<uint8_t>& bytes) {
  BigInt out;
  for (uint8_t b : bytes) {
    out = (out << 8) + BigInt(b);
  }
  return out;
}

std::vector<uint8_t> BigInt::ToBytes() const {
  if (IsZero()) return {};
  size_t nbytes = (BitLength() + 7) / 8;
  std::vector<uint8_t> out(nbytes, 0);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t limb = i / kLimbBytes;
    size_t shift = (i % kLimbBytes) * 8;
    out[nbytes - 1 - i] = static_cast<uint8_t>(limbs_[limb] >> shift);
  }
  return out;
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) return "0";
  Limbs rem = limbs_;
  std::string digits;
  const Limbs billion = {Limb{1000000000u}};
  while (!rem.empty()) {
    Limbs q, r;
    DivModMag(rem, billion, &q, &r);
    uint32_t chunk = r.empty() ? 0u : static_cast<uint32_t>(r[0]);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
    rem = std::move(q);
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = static_cast<int>(kLimbBits) - 4; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  size_t first = out.find_first_not_of('0');
  out = out.substr(first);
  if (sign_ < 0) out.insert(out.begin(), '-');
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  return kLimbBits * limbs_.size() -
         static_cast<size_t>(std::countl_zero(limbs_.back()));
}

bool BigInt::TestBit(size_t i) const {
  size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

bool BigInt::FitsU64() const { return limbs_.size() <= 64 / kLimbBits; }

uint64_t BigInt::MagnitudeU64() const {
  PPD_CHECK_MSG(FitsU64(), "magnitude exceeds 64 bits");
  uint64_t v = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    v |= static_cast<uint64_t>(limbs_[i]) << (i * kLimbBits);
  }
  return v;
}

int64_t BigInt::ToI64() const {
  uint64_t mag = MagnitudeU64();
  if (sign_ >= 0) {
    PPD_CHECK_MSG(mag <= static_cast<uint64_t>(INT64_MAX), "i64 overflow");
    return static_cast<int64_t>(mag);
  }
  PPD_CHECK_MSG(mag <= static_cast<uint64_t>(INT64_MAX) + 1, "i64 underflow");
  return -static_cast<int64_t>(mag - 1) - 1;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  if (out.sign_ < 0) out.sign_ = 1;
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  if (IsZero()) return rhs;
  if (rhs.IsZero()) return *this;
  BigInt out;
  if (sign_ == rhs.sign_) {
    out.limbs_ = AddMag(limbs_, rhs.limbs_);
    out.sign_ = sign_;
  } else {
    int cmp = CmpMag(limbs_, rhs.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMag(limbs_, rhs.limbs_);
      out.sign_ = sign_;
    } else {
      out.limbs_ = SubMag(rhs.limbs_, limbs_);
      out.sign_ = rhs.sign_;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (IsZero() || rhs.IsZero()) return BigInt();
  BigInt out;
  out.limbs_ = MulMag(limbs_, rhs.limbs_);
  out.sign_ = sign_ * rhs.sign_;
  out.Normalize();
  return out;
}

BigInt& BigInt::operator+=(const BigInt& rhs) { return *this = *this + rhs; }
BigInt& BigInt::operator-=(const BigInt& rhs) { return *this = *this - rhs; }
BigInt& BigInt::operator*=(const BigInt& rhs) { return *this = *this * rhs; }

void BigInt::DivMod(const BigInt& divisor, BigInt* quotient,
                    BigInt* remainder) const {
  PPD_CHECK_MSG(!divisor.IsZero(), "division by zero");
  Limbs q, r;
  DivModMag(limbs_, divisor.limbs_, quotient ? &q : nullptr,
            remainder ? &r : nullptr);
  if (quotient) {
    quotient->limbs_ = std::move(q);
    quotient->sign_ = sign_ * divisor.sign_;
    quotient->Normalize();
  }
  if (remainder) {
    remainder->limbs_ = std::move(r);
    remainder->sign_ = sign_;  // remainder carries the dividend's sign
    remainder->Normalize();
  }
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  BigInt q;
  DivMod(rhs, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  BigInt r;
  DivMod(rhs, nullptr, &r);
  return r;
}

BigInt BigInt::Mod(const BigInt& modulus) const {
  BigInt r = *this % modulus;
  if (r.IsNegative()) r += modulus.Abs();
  return r;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (IsZero()) return BigInt();
  BigInt out;
  out.limbs_ = ShlMag(limbs_, bits);
  out.sign_ = sign_;
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  if (IsZero()) return BigInt();
  BigInt out;
  out.limbs_ = ShrMag(limbs_, bits);
  out.sign_ = sign_;
  out.Normalize();
  return out;
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const {
  if (sign_ != rhs.sign_) {
    return sign_ < rhs.sign_ ? std::strong_ordering::less
                             : std::strong_ordering::greater;
  }
  int cmp = CmpMag(limbs_, rhs.limbs_) * (sign_ < 0 ? -1 : 1);
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

bool BigInt::operator==(const BigInt& rhs) const {
  return sign_ == rhs.sign_ && limbs_ == rhs.limbs_;
}

BigInt BigInt::ModExp(const BigInt& base, const BigInt& exponent,
                      const BigInt& modulus) {
  PPD_CHECK_MSG(modulus.sign() > 0, "modulus must be positive");
  PPD_CHECK_MSG(!exponent.IsNegative(), "exponent must be non-negative");
  if (modulus == BigInt(1)) return BigInt();
  BigInt b = base.Mod(modulus);
  if (modulus.IsOdd()) {
    Result<MontgomeryCtx> ctx = MontgomeryCtx::Create(modulus);
    PPD_CHECK(ctx.ok());
    return ctx->Exp(b, exponent);
  }
  // Generic square-and-multiply for even moduli (rare in this library).
  BigInt result(1);
  size_t bits = exponent.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = (result * result).Mod(modulus);
    if (exponent.TestBit(i)) result = (result * b).Mod(modulus);
  }
  return result;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt g = Gcd(a, b);
  return (a.Abs() / g) * b.Abs();
}

Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt(1)) {
    return Status::InvalidArgument("modulus must be > 1");
  }
  // Extended Euclid on (a mod m, m).
  BigInt r0 = m;
  BigInt r1 = a.Mod(m);
  BigInt t0;        // coefficient of m
  BigInt t1(1);     // coefficient of a
  while (!r1.IsZero()) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    BigInt t2 = t0 - q * t1;
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (r0 != BigInt(1)) {
    return Status::InvalidArgument("value not invertible modulo m");
  }
  return t0.Mod(m);
}

BigInt BigInt::RandomBits(SecureRng& rng, size_t bits) {
  if (bits == 0) return BigInt();
  size_t nbytes = (bits + 7) / 8;
  std::vector<uint8_t> raw = rng.Bytes(nbytes);
  // Mask excess high bits.
  size_t excess = nbytes * 8 - bits;
  raw[0] &= static_cast<uint8_t>(0xff >> excess);
  return FromBytes(raw);
}

BigInt BigInt::RandomBelow(SecureRng& rng, const BigInt& bound) {
  PPD_CHECK_MSG(bound.sign() > 0, "RandomBelow bound must be positive");
  size_t bits = bound.BitLength();
  while (true) {
    BigInt candidate = RandomBits(rng, bits);
    if (candidate < bound) return candidate;
  }
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToDecimal();
}

}  // namespace ppdbscan
