#ifndef PPDBSCAN_BIGINT_BIGINT_H_
#define PPDBSCAN_BIGINT_BIGINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bigint/limb.h"
#include "common/random.h"
#include "common/status.h"

namespace ppdbscan {

/// Arbitrary-precision signed integer.
///
/// Representation: sign/magnitude, with the magnitude stored as a normalized
/// little-endian vector of limbs (no trailing zero limbs; zero is the empty
/// vector with sign 0). The limb width is selected at compile time
/// (bigint/limb.h): 64-bit limbs with `unsigned __int128` products by
/// default, 32-bit limbs as fallback. The serialized byte format is
/// limb-width independent. All arithmetic is exact; operations never
/// throw — domain errors (e.g. division by zero) abort via PPD_CHECK, and
/// parsing returns Result.
///
/// The class is the foundation for the Paillier and RSA cryptosystems in
/// src/crypto and is differentially tested against GMP in the test suite.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// Conversion from a native signed integer.
  BigInt(int64_t value);  // NOLINT(runtime/explicit): intended implicit.

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Constructs from an unsigned 64-bit value.
  static BigInt FromU64(uint64_t value);
  /// Parses a base-10 string with optional leading '-'.
  static Result<BigInt> FromDecimal(std::string_view text);
  /// Parses a base-16 string with optional leading '-' (no 0x prefix).
  static Result<BigInt> FromHex(std::string_view text);
  /// Constructs a non-negative value from big-endian magnitude bytes.
  static BigInt FromBytes(const std::vector<uint8_t>& bytes);

  /// Big-endian magnitude bytes (no sign); empty for zero.
  std::vector<uint8_t> ToBytes() const;
  /// Base-10 representation with leading '-' when negative.
  std::string ToDecimal() const;
  /// Lowercase base-16 representation with leading '-' when negative.
  std::string ToHex() const;

  /// -1, 0 or +1.
  int sign() const { return sign_; }
  bool IsZero() const { return sign_ == 0; }
  bool IsNegative() const { return sign_ < 0; }
  bool IsOdd() const { return sign_ != 0 && (limbs_[0] & 1u); }
  bool IsEven() const { return !IsOdd(); }

  /// Number of significant bits of the magnitude; 0 for zero.
  size_t BitLength() const;
  /// Bit `i` (little-endian) of the magnitude.
  bool TestBit(size_t i) const;
  /// Number of limbs in the magnitude (implementation detail exposed for
  /// benchmarks and tests).
  size_t LimbCount() const { return limbs_.size(); }

  /// True iff the magnitude fits in a uint64_t.
  bool FitsU64() const;
  /// Magnitude as uint64_t; PPD_CHECKs FitsU64(). Sign is ignored.
  uint64_t MagnitudeU64() const;
  /// Value as int64_t; PPD_CHECKs that the signed value fits.
  int64_t ToI64() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// PPD_CHECKs rhs != 0.
  BigInt operator/(const BigInt& rhs) const;
  /// Truncated remainder: (a/b)*b + a%b == a. Sign follows the dividend.
  BigInt operator%(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);

  /// Computes quotient and remainder in one pass (truncated semantics).
  /// Either output may be null.
  void DivMod(const BigInt& divisor, BigInt* quotient, BigInt* remainder) const;

  /// Euclidean residue: result in [0, |modulus|). PPD_CHECKs modulus != 0.
  BigInt Mod(const BigInt& modulus) const;

  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  std::strong_ordering operator<=>(const BigInt& rhs) const;
  bool operator==(const BigInt& rhs) const;

  /// (base^exponent) mod modulus for exponent >= 0, modulus > 0. Uses
  /// Montgomery exponentiation when the modulus is odd.
  static BigInt ModExp(const BigInt& base, const BigInt& exponent,
                       const BigInt& modulus);

  /// Greatest common divisor of |a| and |b| (non-negative).
  static BigInt Gcd(const BigInt& a, const BigInt& b);
  /// Least common multiple of |a| and |b| (non-negative).
  static BigInt Lcm(const BigInt& a, const BigInt& b);

  /// Multiplicative inverse of a modulo m (m > 1): returns x in [1, m) with
  /// a*x = 1 (mod m), or kInvalidArgument when gcd(a, m) != 1.
  static Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

  /// Uniform value in [0, 2^bits).
  static BigInt RandomBits(SecureRng& rng, size_t bits);
  /// Uniform value in [0, bound) for bound > 0 (rejection sampling).
  static BigInt RandomBelow(SecureRng& rng, const BigInt& bound);

  // Internal limb access for the Montgomery machinery (src/bigint only).
  const std::vector<Limb>& limbs() const { return limbs_; }
  static BigInt FromLimbs(std::vector<Limb> limbs, int sign);

 private:
  void Normalize();

  int sign_ = 0;              // -1, 0, +1
  std::vector<Limb> limbs_;   // little-endian magnitude
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace ppdbscan

#endif  // PPDBSCAN_BIGINT_BIGINT_H_
