#include "bigint/prime.h"

#include <vector>

#include "bigint/montgomery.h"
#include "common/status.h"

namespace ppdbscan {

namespace {

// Primes below 8192, computed once (function-local static is allowed to use
// dynamic initialization).
const std::vector<uint32_t>& SmallPrimes() {
  static const std::vector<uint32_t>& primes = *new std::vector<uint32_t>([] {
    constexpr uint32_t kLimit = 8192;
    std::vector<bool> sieve(kLimit, true);
    std::vector<uint32_t> out;
    for (uint32_t i = 2; i < kLimit; ++i) {
      if (!sieve[i]) continue;
      out.push_back(i);
      for (uint32_t j = 2 * i; j < kLimit; j += i) sieve[j] = false;
    }
    return out;
  }());
  return primes;
}

// One Miller-Rabin round: tests whether `n` passes for base `a`, given
// n - 1 = d * 2^s with d odd. `ctx` is the Montgomery context for n.
bool MillerRabinRound(const BigInt& n, const BigInt& a, const BigInt& d,
                      size_t s, const MontgomeryCtx& ctx) {
  BigInt x = ctx.Exp(a, d);
  const BigInt one(1);
  const BigInt n_minus_1 = n - one;
  if (x == one || x == n_minus_1) return true;
  for (size_t i = 1; i < s; ++i) {
    x = (x * x).Mod(n);
    if (x == n_minus_1) return true;
    if (x == one) return false;  // nontrivial sqrt of 1 => composite
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigInt& n, SecureRng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (uint32_t p : SmallPrimes()) {
    BigInt bp(static_cast<int64_t>(p));
    if (n == bp) return true;
    if ((n % bp).IsZero()) return false;
  }
  // n is odd and > 8192 here.
  BigInt d = n - BigInt(1);
  size_t s = 0;
  while (d.IsEven()) {
    d = d >> 1;
    ++s;
  }
  Result<MontgomeryCtx> ctx = MontgomeryCtx::Create(n);
  PPD_CHECK(ctx.ok());

  // Deterministic base set valid for n < 3,215,031,751.
  if (n.FitsU64() && n.MagnitudeU64() < 3215031751ULL) {
    for (int64_t base : {2, 3, 5, 7}) {
      if (!MillerRabinRound(n, BigInt(base), d, s, *ctx)) return false;
    }
    return true;
  }

  const BigInt n_minus_3 = n - BigInt(3);
  for (int round = 0; round < rounds; ++round) {
    BigInt a = BigInt::RandomBelow(rng, n_minus_3) + BigInt(2);  // [2, n-2]
    if (!MillerRabinRound(n, a, d, s, *ctx)) return false;
  }
  return true;
}

BigInt GeneratePrime(SecureRng& rng, size_t bits, int mr_rounds) {
  PPD_CHECK_MSG(bits >= 16, "prime size must be >= 16 bits");
  while (true) {
    BigInt candidate = BigInt::RandomBits(rng, bits);
    // Force the two top bits (take the low bits-2 bits, then add them back)
    // and make the candidate odd.
    BigInt top_bits = BigInt(3) << (bits - 2);
    candidate = candidate.Mod(BigInt(1) << (bits - 2)) + top_bits;
    if (candidate.IsEven()) candidate += BigInt(1);

    // Trial-divide then Miller-Rabin.
    bool composite = false;
    for (uint32_t p : SmallPrimes()) {
      BigInt bp(static_cast<int64_t>(p));
      if (candidate == bp) return candidate;
      if ((candidate % bp).IsZero()) {
        composite = true;
        break;
      }
    }
    if (composite) continue;
    if (IsProbablePrime(candidate, rng, mr_rounds)) return candidate;
  }
}

}  // namespace ppdbscan
