#ifndef PPDBSCAN_BIGINT_KERNELS_H_
#define PPDBSCAN_BIGINT_KERNELS_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "bigint/limb.h"

namespace ppdbscan {

/// Pluggable limb-span primitives behind every bigint / Montgomery inner
/// loop. Each kernel is a table of function pointers over raw little-endian
/// limb spans; the portable scalar table is the semantic reference, and any
/// alternative implementation (the x86-64 mulx/ADX table, a future AVX one)
/// must be bit-identical to it on every input — asserted operand-by-operand
/// and end-to-end (Paillier ciphertext goldens) by kernel_matrix_test.
///
/// Dispatch happens once, at first use: the fastest kernel the running CPU
/// supports is chosen via CPUID (see ActiveLimbKernels), overridable with
/// the PPDBSCAN_KERNEL environment variable (`scalar` or `mulx`) for tests
/// and benches. The 32-bit limb build compiles the scalar table only.
struct LimbKernels {
  /// Stable identifier used by PPDBSCAN_KERNEL and test/bench labels.
  const char* name;

  /// r[0..n) = a[0..n) * b; returns the high (carry-out) limb.
  /// r must not alias a. n may be 0.
  Limb (*mul_1)(Limb* r, const Limb* a, size_t n, Limb b);

  /// r[0..n) += a[0..n) * b; returns the carry-out limb (< 2^kLimbBits:
  /// r + a*b < B^(n+1) for B = 2^kLimbBits). r must not alias a. n may be 0.
  Limb (*addmul_1)(Limb* r, const Limb* a, size_t n, Limb b);

  /// r[0..n) = a[0..n) + b[0..n) with carry propagation; returns the final
  /// carry (0 or 1). r may alias a and/or b. n may be 0.
  Limb (*add_n)(Limb* r, const Limb* a, const Limb* b, size_t n);

  /// r[0..n) = a[0..n) - b[0..n) (wrapping mod B^n) with borrow
  /// propagation; returns the final borrow (0 or 1). r may alias a and/or
  /// b. n may be 0.
  Limb (*sub_n)(Limb* r, const Limb* a, const Limb* b, size_t n);
};

/// The portable scalar reference kernel (DoubleLimb accumulators). Always
/// compiled, always supported.
const LimbKernels& ScalarLimbKernels();

/// Every kernel compiled into this build, scalar first. A compiled kernel
/// may still be unsupported on the running CPU (see LimbKernelsSupported).
std::vector<const LimbKernels*> CompiledLimbKernels();

/// The compiled kernels the running CPU can execute, scalar first. This is
/// what kernel_matrix_test iterates.
std::vector<const LimbKernels*> SupportedLimbKernels();

/// Looks a compiled kernel up by name; nullptr when no kernel of that name
/// was compiled into this build.
const LimbKernels* FindLimbKernels(std::string_view name);

/// True when the running CPU can execute `kernels` (CPUID feature check;
/// the scalar kernel is unconditionally supported).
bool LimbKernelsSupported(const LimbKernels& kernels);

/// The kernel every bigint/Montgomery operation routes through. Resolved
/// once, on first use: PPDBSCAN_KERNEL, when set, names the kernel (the
/// process aborts on an unknown or CPU-unsupported name — a forced kernel
/// must never silently fall back); otherwise the fastest supported kernel
/// wins (mulx on x86-64 with BMI2+ADX, scalar everywhere else).
const LimbKernels& ActiveLimbKernels();

/// Replaces the active kernel for the rest of the process (tests only).
/// Passing nullptr re-runs the startup dispatch (env override included).
void SetActiveLimbKernelsForTesting(const LimbKernels* kernels);

/// Propagates a single incoming carry limb through r[0..n), stopping as
/// soon as it is absorbed; returns the carry out of the span (0 unless the
/// carry rippled past r[n-1]).
inline Limb PropagateCarry(Limb* r, size_t n, Limb carry) {
  for (size_t i = 0; carry != 0 && i < n; ++i) {
    DoubleLimb s = static_cast<DoubleLimb>(r[i]) + carry;
    r[i] = static_cast<Limb>(s);
    carry = static_cast<Limb>(s >> kLimbBits);
  }
  return carry;
}

/// Propagates a single incoming borrow (0 or 1) through r[0..n), stopping
/// as soon as it is absorbed; returns the borrow out of the span.
inline Limb PropagateBorrow(Limb* r, size_t n, Limb borrow) {
  for (size_t i = 0; borrow != 0 && i < n; ++i) {
    Limb v = r[i];
    r[i] = v - borrow;
    borrow = v == 0 ? 1 : 0;
  }
  return borrow;
}

}  // namespace ppdbscan

#endif  // PPDBSCAN_BIGINT_KERNELS_H_
