#include "bigint/ifma.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "bigint/limb.h"
#include "common/status.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define PPDBSCAN_HAVE_IFMA_ENGINE 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace ppdbscan {
namespace ifma {

namespace {

constexpr int kDigitBits = 52;
constexpr uint64_t kDigitMask = (uint64_t{1} << kDigitBits) - 1;
// Digit cap: 96 digits cover moduli up to ~4990 bits (Paillier n² for
// 2048-bit keys needs 79). Larger moduli fall back to the portable path.
constexpr size_t kMaxDigits = 96;

// Little-endian 64-bit word view of a limb vector (identity under 64-bit
// limbs, pairs under 32-bit limbs) — keeps the digit codec limb-width
// agnostic so both builds produce identical radix-2^52 digits.
std::vector<uint64_t> PackWords(const std::vector<Limb>& limbs) {
  std::vector<uint64_t> w((limbs.size() * kLimbBits + 63) / 64, 0);
  for (size_t i = 0; i < limbs.size(); ++i) {
    const size_t bit = i * kLimbBits;
    w[bit / 64] |= static_cast<uint64_t>(limbs[i]) << (bit % 64);
  }
  return w;
}

// Writes the radix-2^52 digits of `w` into dst[d·kIfmaLanes + lane].
void ToDigitsLane(const std::vector<uint64_t>& w, size_t digits,
                  uint64_t* dst, size_t lane) {
  for (size_t d = 0; d < digits; ++d) {
    const size_t lo = d * kDigitBits;
    const size_t word = lo / 64, sh = lo % 64;
    uint64_t v = word < w.size() ? w[word] >> sh : 0;
    if (sh + kDigitBits > 64 && word + 1 < w.size()) {
      v |= w[word + 1] << (64 - sh);
    }
    dst[d * kIfmaLanes + lane] = v & kDigitMask;
  }
}

BigInt FromDigitsLane(const uint64_t* src, size_t digits, size_t lane) {
  std::vector<uint64_t> w((digits * kDigitBits + 63) / 64 + 1, 0);
  for (size_t d = 0; d < digits; ++d) {
    const uint64_t v = src[d * kIfmaLanes + lane];
    const size_t lo = d * kDigitBits;
    const size_t word = lo / 64, sh = lo % 64;
    w[word] |= v << sh;
    if (sh + kDigitBits > 64) w[word + 1] |= v >> (64 - sh);
  }
  std::vector<Limb> limbs(w.size() * (64 / kLimbBits));
  for (size_t i = 0; i < limbs.size(); ++i) {
    const size_t bit = i * kLimbBits;
    limbs[i] = static_cast<Limb>(w[bit / 64] >> (bit % 64));
  }
  return BigInt::FromLimbs(std::move(limbs), 1);
}

#if defined(PPDBSCAN_HAVE_IFMA_ENGINE)

bool DetectHostIfma() {
  if (!__builtin_cpu_supports("avx512f") ||
      !__builtin_cpu_supports("avx512ifma")) {
    return false;
  }
  // The OS must have enabled ZMM state (XCR0 bits for SSE/AVX/opmask/
  // ZMM_Hi256/Hi16_ZMM), or every 512-bit instruction faults.
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr unsigned int kOsxsaveBit = 1u << 27;
  if ((ecx & kOsxsaveBit) == 0) return false;
  uint32_t xlo = 0, xhi = 0;
  __asm__("xgetbv" : "=a"(xlo), "=d"(xhi) : "c"(0));
  constexpr uint32_t kZmmState = 0xE6;
  return (xlo & kZmmState) == kZmmState;
}

/// One 8-lane almost-Montgomery multiplication in radix 2^52:
/// out = A·B·2^(-52K) (+ a multiple of n), digit-normalized, < 2n per
/// lane. A, B, n52 and out are [digit][lane] arrays of K×8 u64; digits
/// must be < 2^52 (the normalized-input invariant). out may alias A or B.
///
/// The accumulator t holds one 64-bit lane per digit with the products'
/// low/high 52-bit halves simply added in — at most 4 additions of < 2^52
/// per digit per round plus a sub-2^12 ripple, so a digit accumulates
/// < 4·K·2^52 + K·2^12 < 2^61 over the K rounds it stays live and never
/// carries inside the loop. One linear normalization pass at the end
/// replaces every per-limb carry chain of the scalar kernels.
__attribute__((target("avx512f,avx512ifma")))
void Amm(size_t K, const uint64_t* n52, uint64_t k0, const uint64_t* A,
         const uint64_t* B, uint64_t* out) {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i k0v = _mm512_set1_epi64(static_cast<long long>(k0));
  __m512i t[kMaxDigits + 1];
  for (size_t j = 0; j <= K; ++j) t[j] = zero;
  const __m512i vb0 = _mm512_loadu_si512(B);
  const __m512i vn0 = _mm512_loadu_si512(n52);
  for (size_t i = 0; i < K; ++i) {
    const __m512i va = _mm512_loadu_si512(A + i * kIfmaLanes);
    // Digit 0: fold in lo(a_i·b_0), derive m = -t/n mod 2^52, then add
    // lo(m·n_0); the surviving bits 52.. of x ripple into digit 1.
    __m512i x = _mm512_madd52lo_epu64(t[0], va, vb0);
    const __m512i vm = _mm512_madd52lo_epu64(zero, x, k0v);
    x = _mm512_madd52lo_epu64(x, vm, vn0);
    const __m512i carry = _mm512_srli_epi64(x, kDigitBits);
    // Remaining digits, shifted down one slot as they complete (the /2^52
    // of the round). Each new t[j-1] = old t[j] + hi halves of digit j-1's
    // products + lo halves of digit j's.
    __m512i vbp = vb0, vnp = vn0;
    for (size_t j = 1; j < K; ++j) {
      const __m512i vbj = _mm512_loadu_si512(B + j * kIfmaLanes);
      const __m512i vnj = _mm512_loadu_si512(n52 + j * kIfmaLanes);
      __m512i y = t[j];
      y = _mm512_madd52hi_epu64(y, va, vbp);
      y = _mm512_madd52hi_epu64(y, vm, vnp);
      y = _mm512_madd52lo_epu64(y, va, vbj);
      y = _mm512_madd52lo_epu64(y, vm, vnj);
      if (j == 1) y = _mm512_add_epi64(y, carry);
      t[j - 1] = y;
      vbp = vbj;
      vnp = vnj;
    }
    __m512i top = t[K];
    top = _mm512_madd52hi_epu64(top, va, vbp);
    top = _mm512_madd52hi_epu64(top, vm, vnp);
    if (K == 1) top = _mm512_add_epi64(top, carry);
    t[K - 1] = top;
    t[K] = zero;
  }
  // Normalize to < 2^52 digits. The value is < 2n < 2^(52K), so the final
  // carry out of the top digit is zero.
  const __m512i mask = _mm512_set1_epi64(static_cast<long long>(kDigitMask));
  __m512i c = zero;
  for (size_t j = 0; j < K; ++j) {
    const __m512i v = _mm512_add_epi64(t[j], c);
    c = _mm512_srli_epi64(v, kDigitBits);
    _mm512_storeu_si512(out + j * kIfmaLanes, _mm512_and_epi64(v, mask));
  }
  PPD_CHECK(_mm512_cmpneq_epu64_mask(c, zero) == 0);
}

#else  // !PPDBSCAN_HAVE_IFMA_ENGINE

bool DetectHostIfma() { return false; }

void Amm(size_t, const uint64_t*, uint64_t, const uint64_t*,
         const uint64_t*, uint64_t*) {
  PPD_CHECK_MSG(false, "IFMA engine not compiled in");
}

#endif  // PPDBSCAN_HAVE_IFMA_ENGINE

}  // namespace

bool Available() {
  static const bool available = [] {
    const bool host = DetectHostIfma();
    const char* env = std::getenv("PPDBSCAN_EXP_ENGINE");
    if (env != nullptr && env[0] != '\0') {
      const std::string_view v(env);
      if (v == "ifma") {
        PPD_CHECK_MSG(host,
                      "PPDBSCAN_EXP_ENGINE=ifma forced but this host cannot "
                      "run AVX-512 IFMA");
        return true;
      }
      if (v == "lockstep") return false;
      PPD_CHECK_MSG(false, "unknown PPDBSCAN_EXP_ENGINE value: "
                               << env << " (expected ifma or lockstep)");
    }
    return host;
  }();
  return available;
}

Ctx52::Ctx52(const BigInt& modulus, const std::vector<Limb>& r2_limbs) {
  const size_t bits = modulus.BitLength();
  // R = 2^(52K) must exceed 4n for the < 2n AMM closure bound.
  k52_ = (bits + 2 + kDigitBits - 1) / kDigitBits;
  if (k52_ > kMaxDigits) return;
  modulus_ = modulus;

  n52_.assign(k52_ * kIfmaLanes, 0);
  const std::vector<uint64_t> nw = PackWords(modulus.limbs());
  for (size_t lane = 0; lane < kIfmaLanes; ++lane) {
    ToDigitsLane(nw, k52_, n52_.data(), lane);
  }

  // -n^{-1} mod 2^52 by Newton iteration on the low word (n odd).
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= uint64_t{2} - nw[0] * inv;
  n0inv52_ = (~inv + 1) & kDigitMask;

  // R52² mod n from the scalar context's R² mod n (R = 2^(kLimbBits·k))
  // by modular doublings/halvings — no wide division needed.
  BigInt x = BigInt::FromLimbs(std::vector<Limb>(r2_limbs), 1);
  const long scalar_bits =
      2 * static_cast<long>(kLimbBits) * static_cast<long>(
          modulus.limbs().size());
  long delta = 2 * static_cast<long>(kDigitBits * k52_) - scalar_bits;
  for (; delta > 0; --delta) {
    x = x + x;
    if (x >= modulus) x = x - modulus;
  }
  for (; delta < 0; ++delta) {
    if (x.IsOdd()) x = x + modulus;
    x = x >> 1;
  }
  r2_52_.assign(k52_ * kIfmaLanes, 0);
  const std::vector<uint64_t> r2w = PackWords(x.limbs());
  for (size_t lane = 0; lane < kIfmaLanes; ++lane) {
    ToDigitsLane(r2w, k52_, r2_52_.data(), lane);
  }
  ok_ = true;
}

void Ctx52::ExpGroup(const BigInt* bases, size_t nb,
                     const std::vector<MontgomeryCtx::WindowOp>& ops,
                     int window_bits, BigInt* out) const {
  PPD_CHECK(ok_ && nb >= 1 && nb <= kIfmaLanes && !ops.empty());
  const size_t K = k52_;
  const size_t vec = K * kIfmaLanes;
  const size_t table_size = size_t{1} << (window_bits - 1);
  // Arena: odd-power table + accumulator + base² + the FromMont "1".
  std::vector<uint64_t> arena((table_size + 3) * vec, 0);
  uint64_t* tables = arena.data();
  uint64_t* acc = tables + table_size * vec;
  uint64_t* b2 = acc + vec;
  uint64_t* one = b2 + vec;
  one[0 * kIfmaLanes + 0] = 0;  // re-zeroed below per lane
  auto table_entry = [&](size_t idx) { return tables + idx * vec; };

  // Stage bases into acc (padding idle lanes with 1) and enter the
  // Montgomery domain: table[0] = base·R52 mod n.
  for (size_t lane = 0; lane < kIfmaLanes; ++lane) {
    BigInt b = lane < nb ? bases[lane] : BigInt(1);
    PPD_CHECK_MSG(!b.IsNegative(), "ExpBatch requires non-negative bases");
    if (b.limbs().size() > modulus_.limbs().size()) {
      // Match MontgomeryCtx::Exp's operand contract exactly: bases wider
      // than the modulus are clamped to its low k limbs (the MulMont
      // clamp), NOT reduced mod n — the results differ for base >= B^k
      // and the engines must stay bit-identical.
      std::vector<Limb> low(b.limbs().begin(),
                            b.limbs().begin() + modulus_.limbs().size());
      b = BigInt::FromLimbs(std::move(low), 1);
    }
    if (b >= modulus_) b = b % modulus_;
    ToDigitsLane(PackWords(b.limbs()), K, acc, lane);
    one[0 * kIfmaLanes + lane] = 1;
  }
  Amm(K, n52_.data(), n0inv52_, acc, r2_52_.data(), table_entry(0));

  if (table_size > 1) {
    Amm(K, n52_.data(), n0inv52_, table_entry(0), table_entry(0), b2);
    for (size_t idx = 1; idx < table_size; ++idx) {
      Amm(K, n52_.data(), n0inv52_, table_entry(idx - 1), b2,
          table_entry(idx));
    }
  }

  // Shared window schedule (identical for every lane: the exponent is
  // common). First op seeds; kNoMultiply marks the trailing zero run.
  std::memcpy(acc, table_entry(ops[0].table_index), vec * sizeof(uint64_t));
  for (size_t op_i = 1; op_i < ops.size(); ++op_i) {
    const MontgomeryCtx::WindowOp& op = ops[op_i];
    for (uint32_t q = 0; q < op.squarings; ++q) {
      Amm(K, n52_.data(), n0inv52_, acc, acc, acc);
    }
    if (op.table_index != MontgomeryCtx::WindowOp::kNoMultiply) {
      Amm(K, n52_.data(), n0inv52_, acc, table_entry(op.table_index), acc);
    }
  }

  // Leave the domain (·1·R⁻¹) and reduce exactly: the AMM output is ≤ n
  // here, so at most one subtraction reaches the canonical residue that
  // MontgomeryCtx::Exp returns.
  Amm(K, n52_.data(), n0inv52_, acc, one, acc);
  for (size_t lane = 0; lane < nb; ++lane) {
    BigInt v = FromDigitsLane(acc, K, lane);
    while (v >= modulus_) v = v - modulus_;
    out[lane] = v;
  }
}

}  // namespace ifma
}  // namespace ppdbscan
