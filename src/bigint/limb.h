#ifndef PPDBSCAN_BIGINT_LIMB_H_
#define PPDBSCAN_BIGINT_LIMB_H_

#include <cstddef>
#include <cstdint>

namespace ppdbscan {

/// Compile-time limb-width selection for the bigint substrate.
///
/// With PPDBSCAN_LIMB64 defined (the default on toolchains providing
/// `unsigned __int128`, selected by the PPDBSCAN_LIMB64 CMake option) the
/// magnitude is stored as 64-bit limbs and every product/accumulation runs
/// in 128-bit registers: the CIOS inner loops do half the iterations of the
/// 32-bit build, which roughly halves Montgomery multiply/square cost.
/// Without it the original 32-bit limb / 64-bit accumulator path is used —
/// a tested fallback for toolchains without `__int128`.
///
/// Everything outside src/bigint is limb-width independent: the serialized
/// byte format (ToBytes/FromBytes, codec.h) is defined over the value, not
/// the representation, so wire bytes and ciphertexts are bit-identical
/// across both builds (asserted by limb_width_test).
#if defined(PPDBSCAN_LIMB64)
using Limb = std::uint64_t;
using DoubleLimb = unsigned __int128;
using SignedDoubleLimb = __int128;
#else
using Limb = std::uint32_t;
using DoubleLimb = std::uint64_t;
using SignedDoubleLimb = std::int64_t;
#endif

inline constexpr size_t kLimbBytes = sizeof(Limb);
inline constexpr size_t kLimbBits = kLimbBytes * 8;

}  // namespace ppdbscan

#endif  // PPDBSCAN_BIGINT_LIMB_H_
