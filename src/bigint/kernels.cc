#include "bigint/kernels.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "common/status.h"

// The mulx/ADX kernel needs 64-bit limbs, an x86-64 target, and an
// assembler that accepts the BMI2/ADX mnemonics (checked at configure time;
// PPDBSCAN_MULX_ASM comes from CMake). Everything else — including the
// 32-bit limb fallback build — dispatches to the scalar kernel only.
#if defined(PPDBSCAN_LIMB64) && defined(PPDBSCAN_MULX_ASM) && \
    defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PPDBSCAN_HAVE_MULX_KERNEL 1
#include <cpuid.h>
#endif

namespace ppdbscan {

namespace {

// --- scalar reference kernel ------------------------------------------------
// Plain DoubleLimb accumulator chains: the semantic reference every other
// kernel is differentially tested against (kernel_matrix_test).

Limb ScalarMul1(Limb* r, const Limb* a, size_t n, Limb b) {
  DoubleLimb carry = 0;
  for (size_t i = 0; i < n; ++i) {
    DoubleLimb t = static_cast<DoubleLimb>(a[i]) * b + carry;
    r[i] = static_cast<Limb>(t);
    carry = t >> kLimbBits;
  }
  return static_cast<Limb>(carry);
}

Limb ScalarAddmul1(Limb* r, const Limb* a, size_t n, Limb b) {
  DoubleLimb carry = 0;
  for (size_t i = 0; i < n; ++i) {
    DoubleLimb t = static_cast<DoubleLimb>(a[i]) * b + r[i] + carry;
    r[i] = static_cast<Limb>(t);
    carry = t >> kLimbBits;
  }
  return static_cast<Limb>(carry);
}

Limb ScalarAddN(Limb* r, const Limb* a, const Limb* b, size_t n) {
  Limb carry = 0;
  for (size_t i = 0; i < n; ++i) {
    DoubleLimb s = static_cast<DoubleLimb>(a[i]) + b[i] + carry;
    r[i] = static_cast<Limb>(s);
    carry = static_cast<Limb>(s >> kLimbBits);
  }
  return carry;
}

Limb ScalarSubN(Limb* r, const Limb* a, const Limb* b, size_t n) {
  Limb borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    // Unsigned wrap: the high half of the DoubleLimb difference is all-ones
    // exactly when the subtraction underflowed.
    DoubleLimb d = static_cast<DoubleLimb>(a[i]) - b[i] - borrow;
    r[i] = static_cast<Limb>(d);
    borrow = static_cast<Limb>(d >> kLimbBits) & 1u;
  }
  return borrow;
}

constexpr LimbKernels kScalarKernels = {
    "scalar", ScalarMul1, ScalarAddmul1, ScalarAddN, ScalarSubN,
};

#if defined(PPDBSCAN_HAVE_MULX_KERNEL)

// --- x86-64 mulx/ADX kernel -------------------------------------------------
// mulx computes a full 64×64→128 product without touching flags, which
// frees CF and OF to run two independent carry chains (adcx/adox) through
// the multiply-accumulate loop. The loop below retires four limbs per
// iteration; flag-safe loop control uses lea (no flags) + jrcxz (reads
// rcx only). The kernel is compiled unconditionally but only dispatched
// when CPUID reports both BMI2 (mulx) and ADX (adcx/adox).

Limb MulxAddmul1(Limb* r, const Limb* a, size_t n, Limb b) {
  // Scalar head brings the remaining length to a multiple of 4 for the
  // unrolled dual-chain loop.
  DoubleLimb head_carry = 0;
  const size_t head = n % 4;
  for (size_t i = 0; i < head; ++i) {
    DoubleLimb t = static_cast<DoubleLimb>(a[i]) * b + r[i] + head_carry;
    r[i] = static_cast<Limb>(t);
    head_carry = t >> kLimbBits;
  }
  size_t blocks = (n - head) / 4;
  Limb carry = static_cast<Limb>(head_carry);
  if (blocks == 0) return carry;
  a += head;
  r += head;
  Limb lo = 0, hi = 0;
  const Limb zero = 0;
  __asm__ volatile(
      // Clears CF and OF (and the lo scratch) before the chains start.
      "xorl %k[lo], %k[lo]\n"
      "1:\n\t"
      // CF chain (adcx): previous high limb into the next low limb.
      // OF chain (adox): the accumulator r[] into the same limb.
      "mulxq 0(%[a]), %[lo], %[hi]\n\t"
      "adcxq %[carry], %[lo]\n\t"
      "adoxq 0(%[r]), %[lo]\n\t"
      "movq %[lo], 0(%[r])\n\t"
      "mulxq 8(%[a]), %[lo], %[carry]\n\t"
      "adcxq %[hi], %[lo]\n\t"
      "adoxq 8(%[r]), %[lo]\n\t"
      "movq %[lo], 8(%[r])\n\t"
      "mulxq 16(%[a]), %[lo], %[hi]\n\t"
      "adcxq %[carry], %[lo]\n\t"
      "adoxq 16(%[r]), %[lo]\n\t"
      "movq %[lo], 16(%[r])\n\t"
      "mulxq 24(%[a]), %[lo], %[carry]\n\t"
      "adcxq %[hi], %[lo]\n\t"
      "adoxq 24(%[r]), %[lo]\n\t"
      "movq %[lo], 24(%[r])\n\t"
      "leaq 32(%[a]), %[a]\n\t"
      "leaq 32(%[r]), %[r]\n\t"
      "leaq -1(%[blocks]), %[blocks]\n\t"
      "jrcxz 2f\n\t"
      "jmp 1b\n"
      "2:\n\t"
      // Fold both live carry flags into the final high limb; the true
      // carry-out is < 2^64 (r + a·b < B^(n+1)), so this cannot wrap.
      "adcxq %[zero], %[carry]\n\t"
      "adoxq %[zero], %[carry]\n\t"
      : [a] "+r"(a), [r] "+r"(r), [carry] "+r"(carry), [lo] "=&r"(lo),
        [hi] "=&r"(hi), [blocks] "+c"(blocks)
      : [zero] "r"(zero), "d"(b)
      : "cc", "memory");
  return carry;
}

Limb MulxMul1(Limb* r, const Limb* a, size_t n, Limb b) {
  if (n == 0) return 0;
  // Single CF chain (hi_{i-1} + lo_i); dec preserves CF, so plain adc
  // loop control works here.
  Limb lo = 0, hi = 0, carry = 0;
  size_t count = n;
  const Limb zero = 0;
  __asm__ volatile(
      "xorl %k[carry], %k[carry]\n"
      "1:\n\t"
      "mulxq 0(%[a]), %[lo], %[hi]\n\t"
      "adcq %[carry], %[lo]\n\t"
      "movq %[lo], 0(%[r])\n\t"
      "movq %[hi], %[carry]\n\t"
      "leaq 8(%[a]), %[a]\n\t"
      "leaq 8(%[r]), %[r]\n\t"
      "decq %[count]\n\t"
      "jnz 1b\n\t"
      "adcq %[zero], %[carry]\n\t"
      : [a] "+r"(a), [r] "+r"(r), [lo] "=&r"(lo), [hi] "=&r"(hi),
        [carry] "=&r"(carry), [count] "+r"(count)
      : [zero] "r"(zero), "d"(b)
      : "cc", "memory");
  return carry;
}

Limb MulxAddN(Limb* r, const Limb* a, const Limb* b, size_t n) {
  if (n == 0) return 0;
  Limb t = 0, carry = 0;
  size_t count = n;
  __asm__ volatile(
      "xorl %k[carry], %k[carry]\n"
      "1:\n\t"
      "movq 0(%[a]), %[t]\n\t"
      "adcq 0(%[b]), %[t]\n\t"
      "movq %[t], 0(%[r])\n\t"
      "leaq 8(%[a]), %[a]\n\t"
      "leaq 8(%[b]), %[b]\n\t"
      "leaq 8(%[r]), %[r]\n\t"
      "decq %[count]\n\t"
      "jnz 1b\n\t"
      "setc %b[carry]\n\t"
      : [a] "+r"(a), [b] "+r"(b), [r] "+r"(r), [t] "=&r"(t),
        [carry] "=&r"(carry), [count] "+r"(count)
      :
      : "cc", "memory");
  return carry;
}

Limb MulxSubN(Limb* r, const Limb* a, const Limb* b, size_t n) {
  if (n == 0) return 0;
  Limb t = 0, borrow = 0;
  size_t count = n;
  __asm__ volatile(
      "xorl %k[borrow], %k[borrow]\n"
      "1:\n\t"
      "movq 0(%[a]), %[t]\n\t"
      "sbbq 0(%[b]), %[t]\n\t"
      "movq %[t], 0(%[r])\n\t"
      "leaq 8(%[a]), %[a]\n\t"
      "leaq 8(%[b]), %[b]\n\t"
      "leaq 8(%[r]), %[r]\n\t"
      "decq %[count]\n\t"
      "jnz 1b\n\t"
      "setc %b[borrow]\n\t"
      : [a] "+r"(a), [b] "+r"(b), [r] "+r"(r), [t] "=&r"(t),
        [borrow] "=&r"(borrow), [count] "+r"(count)
      :
      : "cc", "memory");
  return borrow;
}

constexpr LimbKernels kMulxKernels = {
    "mulx", MulxMul1, MulxAddmul1, MulxAddN, MulxSubN,
};

bool CpuSupportsBmi2Adx() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr unsigned int kBmi2Bit = 1u << 8;
  constexpr unsigned int kAdxBit = 1u << 19;
  return (ebx & kBmi2Bit) != 0 && (ebx & kAdxBit) != 0;
}

#endif  // PPDBSCAN_HAVE_MULX_KERNEL

const LimbKernels* Dispatch() {
  const char* env = std::getenv("PPDBSCAN_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    const LimbKernels* forced = FindLimbKernels(env);
    PPD_CHECK_MSG(forced != nullptr,
                  "PPDBSCAN_KERNEL=" << env
                                     << " does not name a limb kernel "
                                        "compiled into this build");
    PPD_CHECK_MSG(LimbKernelsSupported(*forced),
                  "PPDBSCAN_KERNEL=" << env
                                     << " is not supported by this CPU");
    return forced;
  }
  // Fastest supported kernel wins; SupportedLimbKernels lists scalar first.
  return SupportedLimbKernels().back();
}

std::atomic<const LimbKernels*>& ActivePtr() {
  static std::atomic<const LimbKernels*> active{Dispatch()};
  return active;
}

}  // namespace

const LimbKernels& ScalarLimbKernels() { return kScalarKernels; }

std::vector<const LimbKernels*> CompiledLimbKernels() {
  std::vector<const LimbKernels*> out = {&kScalarKernels};
#if defined(PPDBSCAN_HAVE_MULX_KERNEL)
  out.push_back(&kMulxKernels);
#endif
  return out;
}

std::vector<const LimbKernels*> SupportedLimbKernels() {
  std::vector<const LimbKernels*> out;
  for (const LimbKernels* k : CompiledLimbKernels()) {
    if (LimbKernelsSupported(*k)) out.push_back(k);
  }
  return out;
}

const LimbKernels* FindLimbKernels(std::string_view name) {
  for (const LimbKernels* k : CompiledLimbKernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

bool LimbKernelsSupported(const LimbKernels& kernels) {
#if defined(PPDBSCAN_HAVE_MULX_KERNEL)
  if (&kernels == &kMulxKernels) {
    static const bool supported = CpuSupportsBmi2Adx();
    return supported;
  }
#endif
  return &kernels == &kScalarKernels;
}

const LimbKernels& ActiveLimbKernels() {
  return *ActivePtr().load(std::memory_order_relaxed);
}

void SetActiveLimbKernelsForTesting(const LimbKernels* kernels) {
  ActivePtr().store(kernels != nullptr ? kernels : Dispatch(),
                    std::memory_order_relaxed);
}

}  // namespace ppdbscan
