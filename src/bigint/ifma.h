#ifndef PPDBSCAN_BIGINT_IFMA_H_
#define PPDBSCAN_BIGINT_IFMA_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"

namespace ppdbscan {
namespace ifma {

/// AVX-512 IFMA multi-buffer exponentiation engine.
///
/// Eight independent modular exponentiations run in lockstep, one per
/// 64-bit lane of the 512-bit vpmadd52 pipes, over a radix-2^52 "almost
/// Montgomery" representation (Gueron's AMM): every digit lives in a
/// 64-bit lane with 12 bits of headroom, so the thousands of
/// multiply-accumulates of a full Montgomery product need **no carry
/// propagation at all** — one vector normalization pass per product
/// replaces every per-limb carry chain of the scalar kernels. The final
/// conversion back to canonical residues is exact, so results are
/// bit-identical to MontgomeryCtx::Exp (asserted by the ExpBatch
/// differential suites).
///
/// This is the batch ModExp backend for Paillier: all randomizer factors
/// of a job share the public exponent n, so ExpBatch feeds groups of
/// kIfmaLanes bases through one shared window schedule here whenever the
/// host supports AVX-512 IFMA.
constexpr size_t kIfmaLanes = 8;

/// True when the engine is compiled in, the CPU+OS support AVX-512 F/IFMA
/// with ZMM state enabled, and PPDBSCAN_EXP_ENGINE does not force it off.
/// The decision is made once per process (the env var is read on first
/// call). PPDBSCAN_EXP_ENGINE=ifma aborts the process when the host
/// cannot run the engine (mirrors the PPDBSCAN_KERNEL contract);
/// PPDBSCAN_EXP_ENGINE=lockstep disables it.
bool Available();

/// Per-modulus radix-2^52 context: modulus digits (lane-replicated),
/// -n^{-1} mod 2^52, and R² mod n for R = 2^(52·digits). Construction is
/// a few modular doublings on top of an existing MontgomeryCtx — cheap
/// enough to build per ExpBatch call.
class Ctx52 {
 public:
  /// `modulus` must be odd and > 1 (the MontgomeryCtx contract).
  /// `r2_limbs` is the scalar context's R² mod n (R = 2^(64·k)), reused
  /// to derive the radix-52 domain constant without a wide division.
  Ctx52(const BigInt& modulus, const std::vector<Limb>& r2_limbs);

  /// True when this modulus fits the engine (digit count within the
  /// compiled cap). Combined with Available() by callers.
  bool ok() const { return ok_; }

  /// out[i] = bases[i]^exponent mod n for i in [0, nb), nb <= kIfmaLanes,
  /// walking the shared sliding-window schedule `ops` (built from the
  /// exponent by MontgomeryCtx::ExpBatch). Unused lanes are padded
  /// internally. Results are canonical (< n) and bit-identical to
  /// MontgomeryCtx::Exp.
  void ExpGroup(const BigInt* bases, size_t nb,
                const std::vector<MontgomeryCtx::WindowOp>& ops,
                int window_bits, BigInt* out) const;

  size_t digits() const { return k52_; }

 private:
  bool ok_ = false;
  BigInt modulus_;
  size_t k52_ = 0;                  // radix-2^52 digit count
  uint64_t n0inv52_ = 0;            // -n^{-1} mod 2^52
  std::vector<uint64_t> n52_;       // k52 × kIfmaLanes, lane-replicated
  std::vector<uint64_t> r2_52_;     // R52² mod n, lane-replicated
};

}  // namespace ifma
}  // namespace ppdbscan

#endif  // PPDBSCAN_BIGINT_IFMA_H_
