#ifndef PPDBSCAN_BIGINT_MONTGOMERY_H_
#define PPDBSCAN_BIGINT_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/limb.h"
#include "common/status.h"

namespace ppdbscan {

class ThreadPool;

/// Precomputed Montgomery reduction context for a fixed odd modulus n > 1.
///
/// Values in the Montgomery domain are represented as x·R mod n where
/// R = 2^(kLimbBits·k) and k is the limb count of n. Multiplication runs
/// an operand-scanning Montgomery product (product rows interleaved with
/// REDC rounds); squaring uses a dedicated path that halves the
/// cross-product work; exponentiation uses a sliding window sized by the
/// exponent bit length. This is the hot path for every Paillier/RSA
/// operation in the library. Every inner loop is a span primitive from the
/// pluggable kernel layer (bigint/kernels.h): the portable scalar kernel
/// with `unsigned __int128` products under 64-bit limbs (PPDBSCAN_LIMB64),
/// or the x86-64 mulx/ADX kernel when the CPU supports BMI2+ADX —
/// runtime-dispatched once, bit-identical results either way.
///
/// Thread-compatible: all methods are const and touch only immutable
/// precomputed state, so one context may serve many threads concurrently.
class MontgomeryCtx {
 public:
  /// Builds a context; fails with kInvalidArgument unless modulus is odd
  /// and > 1.
  static Result<MontgomeryCtx> Create(const BigInt& modulus);

  /// x·R mod n. Requires 0 <= x < n.
  BigInt ToMont(const BigInt& x) const;
  /// x·R⁻¹ mod n for x in the Montgomery domain.
  BigInt FromMont(const BigInt& x) const;
  /// Montgomery product a·b·R⁻¹ mod n (inputs/outputs in the domain).
  /// Operands wider than the modulus are clamped: only the low k limbs of
  /// each input contribute, i.e. MulMont(a, b) == MulMont(a mod B^k,
  /// b mod B^k) for B = 2^kLimbBits (asserted by the OverWideOperands
  /// tests). Callers are expected to pass reduced values.
  BigInt MulMont(const BigInt& a, const BigInt& b) const;
  /// Montgomery square a²·R⁻¹ mod n; same contract (clamping included) as
  /// MulMont(a, a) but ~1.15–1.35× faster, growing with the modulus size
  /// (the a_i·a_j cross terms are computed once and doubled).
  BigInt SqrMont(const BigInt& a) const;

  /// (base^exponent) mod n for plain-domain base in [0, n) and
  /// exponent >= 0; returns a plain-domain value.
  BigInt Exp(const BigInt& base, const BigInt& exponent) const;

  /// bases[i]^exponent mod n for every i — the shared-exponent batch
  /// analogue of Exp, bit-identical to calling Exp per element (the result
  /// representation is canonical, so equality is exact).
  ///
  /// The win is architectural, not algorithmic: the batch is processed in
  /// groups of kExpBatchStreams independent exponentiations walked in
  /// lockstep through one shared window schedule, with the Montgomery
  /// REDC rounds of the in-flight group interleaved at the round level.
  /// A single exponentiation serializes on the store-forwarding chain
  /// between consecutive REDC rounds; round-interleaving gives the
  /// out-of-order core an independent multiply to retire while a sibling
  /// stream's round waits, which is where the measured ~1.5–2× per-element
  /// speedup comes from. Groups beyond the first are fanned across `pool`
  /// (the global pool when null; on a single-worker pool the calling
  /// thread runs them serially).
  ///
  /// This is the Paillier encryption hot path: every randomizer factor in
  /// a job is r_i^n mod n² for the same public exponent n.
  std::vector<BigInt> ExpBatch(const std::vector<BigInt>& bases,
                               const BigInt& exponent,
                               ThreadPool* pool = nullptr) const;

  /// Independent exponentiations kept in flight by ExpBatch's round-level
  /// interleave. Sized so one group's working set (window tables included)
  /// stays L1/L2-resident for production moduli while still covering the
  /// inter-round dependency latency.
  static constexpr size_t kExpBatchStreams = 4;

  /// Sliding-window width used by Exp for an exponent of `exp_bits` bits.
  /// Exposed so tests can pin behaviour at the width boundaries; the
  /// thresholds balance the 2^(w-1)-entry odd-power table against the
  /// multiplies saved per window.
  static int WindowBitsForExponent(size_t exp_bits);

  const BigInt& modulus() const { return modulus_; }

  /// One entry of the shared left-to-right sliding-window schedule ExpBatch
  /// walks: `squarings` squarings followed by a multiply with odd-power
  /// table entry `table_index` (kNoMultiply for the trailing zero-run
  /// entry). Public only so the batch engines (lockstep here, AVX-512 IFMA
  /// in bigint/ifma.h) can share one schedule — not a supported API
  /// surface.
  struct WindowOp {
    uint32_t squarings;
    uint32_t table_index;
    static constexpr uint32_t kNoMultiply = 0xFFFFFFFFu;
  };

 private:
  friend class FixedBaseTable;  // shares the raw-limb product machinery

  MontgomeryCtx() = default;

  // Raw-limb Montgomery product (kernel addmul_1 rows interleaved with
  // REDC rounds); a and b little-endian, clamped to their low k_ limbs.
  std::vector<Limb> MulLimbs(const std::vector<Limb>& a,
                             const std::vector<Limb>& b) const;
  // Raw-limb Montgomery squaring (schoolbook square with doubled cross
  // terms, then k REDC rounds); a little-endian, clamped to its low k_
  // limbs.
  std::vector<Limb> SqrLimbs(const std::vector<Limb>& a) const;

  // --- multi-stream batch engine (ExpBatch) --------------------------------
  // All batch values are fixed-width k_-limb little-endian spans (zero
  // padded); `t` is caller-provided scratch of ns·(2k_+2) limbs.

  // out[s] = Montgomery product of a[s] (k_ limbs) and b[s] (bn limbs),
  // for ns streams with the REDC rounds interleaved across streams.
  // out[s] may alias a[s] or b[s]; results are fully reduced (< n).
  void MulRoundsBatch(size_t ns, Limb* t, const Limb* const* a,
                      const Limb* const* b, size_t bn,
                      Limb* const* out) const;
  // out[s] = Montgomery square of a[s] (k_ limbs), cross-term rows and
  // REDC rounds interleaved across the ns streams.
  void SqrRoundsBatch(size_t ns, Limb* t, const Limb* const* a,
                      Limb* const* out) const;
  // Final REDC step shared by the batch paths: conditional subtract of n
  // on the k_+2-limb accumulator tail at t+k_, then copy k_ limbs to out.
  void FinalizeRedcFixed(Limb* t, Limb* out) const;
  // One lockstep group: out[s] = bases[s]^exponent via the shared window
  // schedule (see ExpBatch).
  void ExpLockstep(size_t ns, const BigInt* bases,
                   const std::vector<WindowOp>& ops, int window_bits,
                   BigInt* out) const;

  BigInt modulus_;
  std::vector<Limb> n_;   // modulus limbs (little-endian)
  Limb n0_inv_ = 0;       // -n^{-1} mod 2^kLimbBits
  size_t k_ = 0;          // limb count of n
  std::vector<Limb> r2_;  // R^2 mod n
  std::vector<Limb> one_; // R mod n (Montgomery form of 1)
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_BIGINT_MONTGOMERY_H_
