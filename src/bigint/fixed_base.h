#ifndef PPDBSCAN_BIGINT_FIXED_BASE_H_
#define PPDBSCAN_BIGINT_FIXED_BASE_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/limb.h"
#include "bigint/montgomery.h"

namespace ppdbscan {

/// Windowed fixed-base exponentiation table: precomputes
/// base^(d·2^(w·i)) mod n in Montgomery form for every w-bit digit
/// position i of an exponent up to `max_exponent_bits`, so a later
/// ExpFixedBase is a pure product of table entries — **no squarings at
/// all**, roughly w+1 fewer Montgomery products per exponent bit than
/// MontgomeryCtx::Exp.
///
/// This trades memory for speed: the table holds
/// ceil(max_exponent_bits/w)·(2^w−1) Montgomery residues of the modulus
/// width (≈1–2 MiB for a 1024-bit exponent over a 2048-bit modulus; see
/// table_bytes()). Build cost is one-time ~windows·(w+2^w) products, so
/// the table pays off after a handful of exponentiations. The intended
/// user is Paillier with a non-default generator g: every Encrypt computes
/// g^m for the same g.
///
/// Results are canonical residues, bit-identical to MontgomeryCtx::Exp
/// (asserted by the differential suite in montgomery_test).
///
/// Thread-compatible after construction: ExpFixedBase is const and touches
/// only immutable state. The MontgomeryCtx must outlive the table.
class FixedBaseTable {
 public:
  /// Builds the table for `base` in [0, n) (wider values are clamped to
  /// the low k limbs, the MulMont contract) and exponents of up to
  /// `max_exponent_bits` bits. `window_bits` 0 selects automatically
  /// (4 for short exponents, 5 from 768 bits up — the memory/speed knee).
  FixedBaseTable(const MontgomeryCtx& ctx, const BigInt& base,
                 size_t max_exponent_bits, int window_bits = 0);

  /// base^exponent mod n for exponent >= 0. Exponents wider than
  /// max_exponent_bits fall back to MontgomeryCtx::Exp (correct, just not
  /// table-accelerated).
  BigInt ExpFixedBase(const BigInt& exponent) const;

  size_t max_exponent_bits() const { return max_exponent_bits_; }
  int window_bits() const { return window_bits_; }
  /// Precomputed table footprint in bytes (the memory half of the
  /// memory-vs-speed trade documented in the README).
  size_t table_bytes() const { return entries_.size() * sizeof(Limb); }

 private:
  const MontgomeryCtx* ctx_;
  BigInt base_;  // kept for the wider-than-max exponent fallback
  size_t max_exponent_bits_;
  int window_bits_;
  size_t windows_;
  // windows_ × (2^w − 1) entries of k limbs each, entry (i, d) at
  // ((i·(2^w−1)) + d − 1)·k: base^(d·2^(w·i)) in Montgomery form for
  // digit values d in [1, 2^w).
  std::vector<Limb> entries_;
};

}  // namespace ppdbscan

#endif  // PPDBSCAN_BIGINT_FIXED_BASE_H_
