#include "bigint/montgomery.h"

#include <algorithm>

#include "bigint/bigint.h"

namespace ppdbscan {

namespace {

// Compares little-endian limb vectors of equal logical value domain.
int CmpLimbs(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  size_t n = std::max(a.size(), b.size());
  for (size_t i = n; i-- > 0;) {
    uint32_t av = i < a.size() ? a[i] : 0;
    uint32_t bv = i < b.size() ? b[i] : 0;
    if (av != bv) return av < bv ? -1 : 1;
  }
  return 0;
}

// a -= b in place; requires a >= b. Both little-endian, a.size() >= b size.
void SubInPlace(std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t d = static_cast<int64_t>(a[i]) - borrow -
                (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (d < 0) {
      d += int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    a[i] = static_cast<uint32_t>(d);
  }
  PPD_CHECK(borrow == 0);
}

}  // namespace

Result<MontgomeryCtx> MontgomeryCtx::Create(const BigInt& modulus) {
  if (modulus.sign() <= 0 || !modulus.IsOdd() || modulus == BigInt(1)) {
    return Status::InvalidArgument(
        "Montgomery modulus must be odd and greater than 1");
  }
  MontgomeryCtx ctx;
  ctx.modulus_ = modulus;
  ctx.n_ = modulus.limbs();
  ctx.k_ = ctx.n_.size();
  // n0_inv = -n^{-1} mod 2^32 via Newton iteration (5 steps suffice for 32
  // bits: precision doubles each step starting from 3 correct bits).
  uint32_t n0 = ctx.n_[0];
  uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) inv *= 2u - n0 * inv;
  ctx.n0_inv_ = ~inv + 1u;  // negate mod 2^32

  // R^2 mod n with R = 2^(32k).
  BigInt r2 = (BigInt(1) << (64 * ctx.k_)).Mod(modulus);
  ctx.r2_ = r2.limbs();
  BigInt r1 = (BigInt(1) << (32 * ctx.k_)).Mod(modulus);
  ctx.one_ = r1.limbs();
  return ctx;
}

std::vector<uint32_t> MontgomeryCtx::MulLimbs(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) const {
  // CIOS: t has k+2 limbs.
  std::vector<uint32_t> t(k_ + 2, 0);
  for (size_t i = 0; i < k_; ++i) {
    uint64_t ai = i < a.size() ? a[i] : 0;
    // t += ai * b
    uint64_t carry = 0;
    for (size_t j = 0; j < k_; ++j) {
      uint64_t bj = j < b.size() ? b[j] : 0;
      uint64_t s = ai * bj + t[j] + carry;
      t[j] = static_cast<uint32_t>(s);
      carry = s >> 32;
    }
    uint64_t s = static_cast<uint64_t>(t[k_]) + carry;
    t[k_] = static_cast<uint32_t>(s);
    t[k_ + 1] = static_cast<uint32_t>(t[k_ + 1] + (s >> 32));

    // m = t[0] * n0_inv mod 2^32; t += m * n; t >>= 32
    uint32_t m = t[0] * n0_inv_;
    uint64_t mm = m;
    carry = (mm * n_[0] + t[0]) >> 32;
    for (size_t j = 1; j < k_; ++j) {
      uint64_t s2 = mm * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<uint32_t>(s2);
      carry = s2 >> 32;
    }
    uint64_t s2 = static_cast<uint64_t>(t[k_]) + carry;
    t[k_ - 1] = static_cast<uint32_t>(s2);
    t[k_] = static_cast<uint32_t>(t[k_ + 1] + (s2 >> 32));
    t[k_ + 1] = 0;
  }
  std::vector<uint32_t> result(t.begin(), t.begin() + static_cast<long>(k_) + 1);
  while (!result.empty() && result.back() == 0) result.pop_back();
  if (CmpLimbs(result, n_) >= 0) {
    result.resize(std::max(result.size(), n_.size()), 0);
    SubInPlace(result, n_);
    while (!result.empty() && result.back() == 0) result.pop_back();
  }
  return result;
}

BigInt MontgomeryCtx::ToMont(const BigInt& x) const {
  PPD_CHECK_MSG(!x.IsNegative(), "ToMont requires non-negative input");
  std::vector<uint32_t> out = MulLimbs(x.limbs(), r2_);
  return BigInt::FromLimbs(std::move(out), 1);
}

BigInt MontgomeryCtx::FromMont(const BigInt& x) const {
  std::vector<uint32_t> one = {1u};
  std::vector<uint32_t> out = MulLimbs(x.limbs(), one);
  return BigInt::FromLimbs(std::move(out), 1);
}

std::vector<uint32_t> MontgomeryCtx::SqrLimbs(
    const std::vector<uint32_t>& a) const {
  // Clamp like MulLimbs: operands wider than the modulus contribute only
  // their low k_ limbs (t is sized for a k_-limb square).
  const size_t len = std::min(a.size(), k_);
  // t = a² (2k limbs + 1 doubling bit), then k REDC rounds shift it down by
  // k limbs; one spare limb absorbs the final carry.
  std::vector<uint32_t> t(2 * k_ + 2, 0);

  // Cross terms a_i·a_j for j > i, each computed once.
  for (size_t i = 0; i < len; ++i) {
    uint64_t ai = a[i];
    uint64_t carry = 0;
    for (size_t j = i + 1; j < len; ++j) {
      uint64_t s = static_cast<uint64_t>(t[i + j]) + ai * a[j] + carry;
      t[i + j] = static_cast<uint32_t>(s);
      carry = s >> 32;
    }
    for (size_t idx = i + len; carry != 0; ++idx) {
      carry += t[idx];
      t[idx] = static_cast<uint32_t>(carry);
      carry >>= 32;
    }
  }

  // Single pass: double the cross terms and fold in the a_i² diagonal.
  // Per limb pair the sum 2·t + sq_limb + carry stays below 2^34, so a
  // 64-bit accumulator absorbs it.
  uint64_t carry = 0;
  for (size_t i = 0; i < k_ + 1; ++i) {
    uint64_t sq = i < len ? static_cast<uint64_t>(a[i]) * a[i] : 0;
    uint64_t s0 = (static_cast<uint64_t>(t[2 * i]) << 1) +
                  static_cast<uint32_t>(sq) + carry;
    t[2 * i] = static_cast<uint32_t>(s0);
    uint64_t s1 = (static_cast<uint64_t>(t[2 * i + 1]) << 1) + (sq >> 32) +
                  (s0 >> 32);
    t[2 * i + 1] = static_cast<uint32_t>(s1);
    carry = s1 >> 32;
  }

  // REDC: clear the low k limbs one at a time.
  for (size_t i = 0; i < k_; ++i) {
    uint64_t m = static_cast<uint32_t>(t[i] * n0_inv_);
    uint64_t carry = 0;
    for (size_t j = 0; j < k_; ++j) {
      uint64_t s = m * n_[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint32_t>(s);
      carry = s >> 32;
    }
    for (size_t idx = i + k_; carry != 0; ++idx) {
      carry += t[idx];
      t[idx] = static_cast<uint32_t>(carry);
      carry >>= 32;
    }
  }

  std::vector<uint32_t> result(t.begin() + static_cast<long>(k_), t.end());
  while (!result.empty() && result.back() == 0) result.pop_back();
  if (CmpLimbs(result, n_) >= 0) {
    result.resize(std::max(result.size(), n_.size()), 0);
    SubInPlace(result, n_);
    while (!result.empty() && result.back() == 0) result.pop_back();
  }
  return result;
}

BigInt MontgomeryCtx::MulMont(const BigInt& a, const BigInt& b) const {
  return BigInt::FromLimbs(MulLimbs(a.limbs(), b.limbs()), 1);
}

BigInt MontgomeryCtx::SqrMont(const BigInt& a) const {
  return BigInt::FromLimbs(SqrLimbs(a.limbs()), 1);
}

int MontgomeryCtx::WindowBitsForExponent(size_t exp_bits) {
  // Crossovers equate table build cost (2^(w-1)-1 muls + 1 sqr) with the
  // ~bits/(w+1) window multiplies saved; tiny exponents get no table at
  // all beyond the base itself.
  if (exp_bits <= 6) return 1;
  if (exp_bits <= 24) return 2;
  if (exp_bits <= 80) return 3;
  if (exp_bits <= 240) return 4;
  return 5;
}

BigInt MontgomeryCtx::Exp(const BigInt& base, const BigInt& exponent) const {
  PPD_CHECK_MSG(!exponent.IsNegative(), "negative exponent");
  if (exponent.IsZero()) {
    return BigInt::FromLimbs(MulLimbs(one_, {1u}), 1);
  }
  std::vector<uint32_t> b = MulLimbs(base.limbs(), r2_);  // to Montgomery

  const size_t bits = exponent.BitLength();
  const int w = WindowBitsForExponent(bits);

  // Odd-power table: table[i] = base^(2i+1) in Montgomery form.
  std::vector<std::vector<uint32_t>> table(size_t{1} << (w - 1));
  table[0] = b;
  if (table.size() > 1) {
    std::vector<uint32_t> b2 = SqrLimbs(b);
    for (size_t i = 1; i < table.size(); ++i) {
      table[i] = MulLimbs(table[i - 1], b2);
    }
  }

  // Left-to-right sliding window: runs of zeros cost one squaring per bit;
  // each window of <= w bits (ending in a set bit) costs one table multiply.
  // The first window seeds the accumulator directly, skipping the leading
  // squarings of 1.
  std::vector<uint32_t> result;
  bool started = false;
  ptrdiff_t i = static_cast<ptrdiff_t>(bits) - 1;
  while (i >= 0) {
    if (!exponent.TestBit(static_cast<size_t>(i))) {
      if (started) result = SqrLimbs(result);
      --i;
      continue;
    }
    ptrdiff_t low = i - w + 1;
    if (low < 0) low = 0;
    while (!exponent.TestBit(static_cast<size_t>(low))) ++low;
    uint32_t idx = 0;
    for (ptrdiff_t s = i; s >= low; --s) {
      idx = (idx << 1) | (exponent.TestBit(static_cast<size_t>(s)) ? 1u : 0u);
    }
    if (started) {
      for (ptrdiff_t s = 0; s <= i - low; ++s) result = SqrLimbs(result);
      result = MulLimbs(result, table[(idx - 1) / 2]);
    } else {
      result = table[(idx - 1) / 2];
      started = true;
    }
    i = low - 1;
  }
  // Convert out of the Montgomery domain.
  return BigInt::FromLimbs(MulLimbs(result, {1u}), 1);
}

}  // namespace ppdbscan
