#include "bigint/montgomery.h"

#include <algorithm>
#include <cstring>

#include "bigint/bigint.h"
#include "bigint/ifma.h"
#include "bigint/kernels.h"
#include "common/thread_pool.h"

namespace ppdbscan {

namespace {

// Compares little-endian limb vectors of equal logical value domain.
int CmpLimbs(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  size_t n = std::max(a.size(), b.size());
  for (size_t i = n; i-- > 0;) {
    Limb av = i < a.size() ? a[i] : 0;
    Limb bv = i < b.size() ? b[i] : 0;
    if (av != bv) return av < bv ? -1 : 1;
  }
  return 0;
}

// a -= b in place; requires a >= b. Both little-endian, a.size() >= b size.
void SubInPlace(std::vector<Limb>& a, const std::vector<Limb>& b,
                const LimbKernels& kern) {
  PPD_CHECK(a.size() >= b.size());
  Limb borrow = kern.sub_n(a.data(), a.data(), b.data(), b.size());
  borrow = PropagateBorrow(a.data() + b.size(), a.size() - b.size(), borrow);
  PPD_CHECK(borrow == 0);
}

// Adds `carry` into t[idx..]. The REDC accumulators below are sized so
// the ripple is always absorbed in bounds; the check guards that
// invariant.
void AddCarryAt(std::vector<Limb>& t, size_t idx, Limb carry) {
  PPD_CHECK(PropagateCarry(t.data() + idx, t.size() - idx, carry) == 0);
}

}  // namespace

Result<MontgomeryCtx> MontgomeryCtx::Create(const BigInt& modulus) {
  if (modulus.sign() <= 0 || !modulus.IsOdd() || modulus == BigInt(1)) {
    return Status::InvalidArgument(
        "Montgomery modulus must be odd and greater than 1");
  }
  MontgomeryCtx ctx;
  ctx.modulus_ = modulus;
  ctx.n_ = modulus.limbs();
  ctx.k_ = ctx.n_.size();
  // n0_inv = -n^{-1} mod 2^kLimbBits via Newton iteration (6 steps suffice
  // for 64 bits: precision doubles each step starting from 1 correct bit,
  // 1 -> 2 -> 4 -> 8 -> 16 -> 32 -> 64).
  Limb n0 = ctx.n_[0];
  Limb inv = 1;
  for (int i = 0; i < 6; ++i) inv *= Limb{2} - n0 * inv;
  ctx.n0_inv_ = ~inv + 1u;  // negate mod 2^kLimbBits

  // R^2 mod n with R = 2^(kLimbBits·k).
  BigInt r2 = (BigInt(1) << (2 * kLimbBits * ctx.k_)).Mod(modulus);
  ctx.r2_ = r2.limbs();
  BigInt r1 = (BigInt(1) << (kLimbBits * ctx.k_)).Mod(modulus);
  ctx.one_ = r1.limbs();
  return ctx;
}

std::vector<Limb> MontgomeryCtx::MulLimbs(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b) const {
  const LimbKernels& kern = ActiveLimbKernels();
  // Clamp: operands wider than the modulus contribute only their low k_
  // limbs (header contract; covered by the OverWideOperands tests). Short
  // operands need no padding: the a_i·b rows simply span bn limbs, which
  // keeps MulLimbs(x, {1u}) — every FromMont — allocation-free and cheap.
  const size_t an = std::min(a.size(), k_);
  const size_t bn = std::min(b.size(), k_);

  // Operand-scanning Montgomery product over the kernel's addmul_1 spans:
  // round i adds a_i·b and then m_i·n at offset i, zeroing t[i]; after k
  // rounds the REDC result sits at t+k. The running total stays below
  // 2n·B^k < B^(2k+1), so 2k+2 limbs bound every carry ripple. The final
  // integer is identical to the fused CIOS form this replaced: both
  // compute (a·b + m·n)/B^k for the same per-round m.
  std::vector<Limb> t(2 * k_ + 2, 0);
  for (size_t i = 0; i < k_; ++i) {
    Limb* ti = t.data() + i;
    Limb ai = i < an ? a[i] : 0;
    AddCarryAt(t, i + bn, kern.addmul_1(ti, b.data(), bn, ai));
    Limb m = static_cast<Limb>(ti[0] * n0_inv_);
    AddCarryAt(t, i + k_, kern.addmul_1(ti, n_.data(), k_, m));
  }
  std::vector<Limb> result(t.begin() + static_cast<long>(k_), t.end());
  while (!result.empty() && result.back() == 0) result.pop_back();
  if (CmpLimbs(result, n_) >= 0) {
    result.resize(std::max(result.size(), n_.size()), 0);
    SubInPlace(result, n_, kern);
    while (!result.empty() && result.back() == 0) result.pop_back();
  }
  return result;
}

BigInt MontgomeryCtx::ToMont(const BigInt& x) const {
  PPD_CHECK_MSG(!x.IsNegative(), "ToMont requires non-negative input");
  std::vector<Limb> out = MulLimbs(x.limbs(), r2_);
  return BigInt::FromLimbs(std::move(out), 1);
}

BigInt MontgomeryCtx::FromMont(const BigInt& x) const {
  std::vector<Limb> one = {1u};
  std::vector<Limb> out = MulLimbs(x.limbs(), one);
  return BigInt::FromLimbs(std::move(out), 1);
}

std::vector<Limb> MontgomeryCtx::SqrLimbs(const std::vector<Limb>& a) const {
  const LimbKernels& kern = ActiveLimbKernels();
  // Clamp like MulLimbs: operands wider than the modulus contribute only
  // their low k_ limbs (t is sized for a k_-limb square).
  const size_t len = std::min(a.size(), k_);
  // t = a² (2k limbs + 1 doubling bit), then k REDC rounds shift it down by
  // k limbs; one spare limb absorbs the final carry.
  std::vector<Limb> t(2 * k_ + 2, 0);

  // Cross terms a_i·a_j for j > i, each computed once — one kernel span
  // per row, rooted at t[2i+1].
  for (size_t i = 0; i + 1 < len; ++i) {
    Limb c = kern.addmul_1(t.data() + 2 * i + 1, a.data() + i + 1,
                           len - i - 1, a[i]);
    AddCarryAt(t, i + len, c);
  }

  // Single pass: double the cross terms and fold in the a_i² diagonal.
  // Per limb pair the sum 2·t + sq_limb + carry stays below 2^(kLimbBits+2),
  // so a DoubleLimb accumulator absorbs it.
  DoubleLimb carry = 0;
  for (size_t i = 0; i < k_ + 1; ++i) {
    DoubleLimb sq = i < len ? static_cast<DoubleLimb>(a[i]) * a[i] : 0;
    DoubleLimb s0 = (static_cast<DoubleLimb>(t[2 * i]) << 1) +
                    static_cast<Limb>(sq) + carry;
    t[2 * i] = static_cast<Limb>(s0);
    DoubleLimb s1 = (static_cast<DoubleLimb>(t[2 * i + 1]) << 1) +
                    (sq >> kLimbBits) + (s0 >> kLimbBits);
    t[2 * i + 1] = static_cast<Limb>(s1);
    carry = s1 >> kLimbBits;
  }

  // REDC: clear the low k limbs one at a time.
  for (size_t i = 0; i < k_; ++i) {
    Limb m = static_cast<Limb>(t[i] * n0_inv_);
    AddCarryAt(t, i + k_, kern.addmul_1(t.data() + i, n_.data(), k_, m));
  }

  std::vector<Limb> result(t.begin() + static_cast<long>(k_), t.end());
  while (!result.empty() && result.back() == 0) result.pop_back();
  if (CmpLimbs(result, n_) >= 0) {
    result.resize(std::max(result.size(), n_.size()), 0);
    SubInPlace(result, n_, kern);
    while (!result.empty() && result.back() == 0) result.pop_back();
  }
  return result;
}

BigInt MontgomeryCtx::MulMont(const BigInt& a, const BigInt& b) const {
  return BigInt::FromLimbs(MulLimbs(a.limbs(), b.limbs()), 1);
}

BigInt MontgomeryCtx::SqrMont(const BigInt& a) const {
  return BigInt::FromLimbs(SqrLimbs(a.limbs()), 1);
}

int MontgomeryCtx::WindowBitsForExponent(size_t exp_bits) {
  // Crossovers equate table build cost (2^(w-1)-1 muls + 1 sqr) with the
  // ~bits/(w+1) window multiplies saved; tiny exponents get no table at
  // all beyond the base itself.
  if (exp_bits <= 6) return 1;
  if (exp_bits <= 24) return 2;
  if (exp_bits <= 80) return 3;
  if (exp_bits <= 240) return 4;
  return 5;
}

BigInt MontgomeryCtx::Exp(const BigInt& base, const BigInt& exponent) const {
  PPD_CHECK_MSG(!exponent.IsNegative(), "negative exponent");
  if (exponent.IsZero()) {
    return BigInt::FromLimbs(MulLimbs(one_, {1u}), 1);
  }
  std::vector<Limb> b = MulLimbs(base.limbs(), r2_);  // to Montgomery

  const size_t bits = exponent.BitLength();
  const int w = WindowBitsForExponent(bits);

  // Odd-power table: table[i] = base^(2i+1) in Montgomery form.
  std::vector<std::vector<Limb>> table(size_t{1} << (w - 1));
  table[0] = b;
  if (table.size() > 1) {
    std::vector<Limb> b2 = SqrLimbs(b);
    for (size_t i = 1; i < table.size(); ++i) {
      table[i] = MulLimbs(table[i - 1], b2);
    }
  }

  // Left-to-right sliding window: runs of zeros cost one squaring per bit;
  // each window of <= w bits (ending in a set bit) costs one table multiply.
  // The first window seeds the accumulator directly, skipping the leading
  // squarings of 1.
  std::vector<Limb> result;
  bool started = false;
  ptrdiff_t i = static_cast<ptrdiff_t>(bits) - 1;
  while (i >= 0) {
    if (!exponent.TestBit(static_cast<size_t>(i))) {
      if (started) result = SqrLimbs(result);
      --i;
      continue;
    }
    ptrdiff_t low = i - w + 1;
    if (low < 0) low = 0;
    while (!exponent.TestBit(static_cast<size_t>(low))) ++low;
    uint32_t idx = 0;
    for (ptrdiff_t s = i; s >= low; --s) {
      idx = (idx << 1) | (exponent.TestBit(static_cast<size_t>(s)) ? 1u : 0u);
    }
    if (started) {
      for (ptrdiff_t s = 0; s <= i - low; ++s) result = SqrLimbs(result);
      result = MulLimbs(result, table[(idx - 1) / 2]);
    } else {
      result = table[(idx - 1) / 2];
      started = true;
    }
    i = low - 1;
  }
  // Convert out of the Montgomery domain.
  return BigInt::FromLimbs(MulLimbs(result, {1u}), 1);
}

// --- multi-stream batch engine ----------------------------------------------
//
// The batch paths below keep every value as a fixed-width k_-limb span so a
// whole lockstep group lives in one preallocated arena: no per-operation
// vector allocations, and the REDC rounds of the group's streams interleave
// in one loop. Interleaving is the point — a lone Montgomery product
// serializes on the t-array read-modify-write chain between consecutive
// rounds (round i+1 reloads limbs round i just stored), and feeding the
// out-of-order core a sibling stream's round while that store-forward
// completes is worth ~1.5–2× per element on the mulx kernel.

namespace {

/// Builds the sliding-window schedule Exp walks implicitly: identical
/// window boundaries and table indices, shared by every stream of a batch
/// (the exponent is common, so the schedule is too). The first op always
/// seeds the accumulator (squarings == 0).
std::vector<MontgomeryCtx::WindowOp> BuildWindowSchedule(
    const BigInt& exponent, int w) {
  std::vector<MontgomeryCtx::WindowOp> ops;
  const size_t bits = exponent.BitLength();
  uint32_t pending = 0;
  bool started = false;
  ptrdiff_t i = static_cast<ptrdiff_t>(bits) - 1;
  while (i >= 0) {
    if (!exponent.TestBit(static_cast<size_t>(i))) {
      if (started) ++pending;
      --i;
      continue;
    }
    ptrdiff_t low = i - w + 1;
    if (low < 0) low = 0;
    while (!exponent.TestBit(static_cast<size_t>(low))) ++low;
    uint32_t idx = 0;
    for (ptrdiff_t s = i; s >= low; --s) {
      idx = (idx << 1) | (exponent.TestBit(static_cast<size_t>(s)) ? 1u : 0u);
    }
    if (started) {
      ops.push_back({pending + static_cast<uint32_t>(i - low + 1),
                     (idx - 1) / 2});
    } else {
      ops.push_back({0, (idx - 1) / 2});
      started = true;
    }
    pending = 0;
    i = low - 1;
  }
  if (pending > 0) {
    ops.push_back({pending, MontgomeryCtx::WindowOp::kNoMultiply});
  }
  return ops;
}

/// Copies a BigInt magnitude into a fixed k-limb span, clamping wide
/// operands to their low k limbs (the MulMont contract) and zero-padding
/// short ones.
void LoadFixed(const std::vector<Limb>& limbs, size_t k, Limb* out) {
  const size_t n = std::min(limbs.size(), k);
  std::copy(limbs.begin(), limbs.begin() + static_cast<long>(n), out);
  std::fill(out + n, out + k, Limb{0});
}

}  // namespace

void MontgomeryCtx::FinalizeRedcFixed(Limb* t, Limb* out) const {
  const LimbKernels& kern = ActiveLimbKernels();
  Limb* r = t + k_;  // k_ + 2 limbs: REDC result, < 2n
  bool ge = r[k_] != 0 || r[k_ + 1] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = k_; i-- > 0;) {
      if (r[i] != n_[i]) {
        ge = r[i] > n_[i];
        break;
      }
    }
  }
  if (ge) {
    Limb borrow = kern.sub_n(r, r, n_.data(), k_);
    borrow = PropagateBorrow(r + k_, 2, borrow);
    PPD_CHECK(borrow == 0);
  }
  PPD_CHECK(r[k_] == 0 && r[k_ + 1] == 0);  // reduced result fits k_ limbs
  std::copy(r, r + k_, out);
}

void MontgomeryCtx::MulRoundsBatch(size_t ns, Limb* t, const Limb* const* a,
                                   const Limb* const* b, size_t bn,
                                   Limb* const* out) const {
  const LimbKernels& kern = ActiveLimbKernels();
  const size_t stride = 2 * k_ + 2;
  std::fill(t, t + ns * stride, Limb{0});
  // Same integer per round as MulLimbs; only the iteration order differs —
  // all streams advance through round i before any stream starts round
  // i+1, so stream s's round i+1 store-forward latency is hidden behind
  // the other ns-1 streams' round-i work.
  for (size_t i = 0; i < k_; ++i) {
    for (size_t s = 0; s < ns; ++s) {
      Limb* ts = t + s * stride;
      Limb* ti = ts + i;
      Limb c = kern.addmul_1(ti, b[s], bn, a[s][i]);
      PPD_CHECK(PropagateCarry(ts + i + bn, stride - i - bn, c) == 0);
      Limb m = static_cast<Limb>(ti[0] * n0_inv_);
      c = kern.addmul_1(ti, n_.data(), k_, m);
      PPD_CHECK(PropagateCarry(ts + i + k_, stride - i - k_, c) == 0);
    }
  }
  for (size_t s = 0; s < ns; ++s) FinalizeRedcFixed(t + s * stride, out[s]);
}

void MontgomeryCtx::SqrRoundsBatch(size_t ns, Limb* t, const Limb* const* a,
                                   Limb* const* out) const {
  const LimbKernels& kern = ActiveLimbKernels();
  const size_t stride = 2 * k_ + 2;
  std::fill(t, t + ns * stride, Limb{0});
  // Cross-term rows a_i·a_{i+1..}, row-interleaved across streams.
  for (size_t i = 0; i + 1 < k_; ++i) {
    for (size_t s = 0; s < ns; ++s) {
      Limb* ts = t + s * stride;
      Limb c = kern.addmul_1(ts + 2 * i + 1, a[s] + i + 1, k_ - i - 1,
                             a[s][i]);
      PPD_CHECK(PropagateCarry(ts + i + k_, stride - i - k_, c) == 0);
    }
  }
  // Doubling + diagonal: a strict serial carry chain, but linear work —
  // per-stream passes back to back are cheap enough to leave uninterleaved.
  for (size_t s = 0; s < ns; ++s) {
    Limb* ts = t + s * stride;
    const Limb* as = a[s];
    DoubleLimb carry = 0;
    for (size_t i = 0; i < k_ + 1; ++i) {
      DoubleLimb sq = i < k_ ? static_cast<DoubleLimb>(as[i]) * as[i] : 0;
      DoubleLimb s0 = (static_cast<DoubleLimb>(ts[2 * i]) << 1) +
                      static_cast<Limb>(sq) + carry;
      ts[2 * i] = static_cast<Limb>(s0);
      DoubleLimb s1 = (static_cast<DoubleLimb>(ts[2 * i + 1]) << 1) +
                      (sq >> kLimbBits) + (s0 >> kLimbBits);
      ts[2 * i + 1] = static_cast<Limb>(s1);
      carry = s1 >> kLimbBits;
    }
  }
  // REDC rounds, interleaved like MulRoundsBatch.
  for (size_t i = 0; i < k_; ++i) {
    for (size_t s = 0; s < ns; ++s) {
      Limb* ts = t + s * stride;
      Limb m = static_cast<Limb>(ts[i] * n0_inv_);
      Limb c = kern.addmul_1(ts + i, n_.data(), k_, m);
      PPD_CHECK(PropagateCarry(ts + i + k_, stride - i - k_, c) == 0);
    }
  }
  for (size_t s = 0; s < ns; ++s) FinalizeRedcFixed(t + s * stride, out[s]);
}

void MontgomeryCtx::ExpLockstep(size_t ns, const BigInt* bases,
                                const std::vector<WindowOp>& ops,
                                int window_bits, BigInt* out) const {
  const size_t table_size = size_t{1} << (window_bits - 1);
  // One arena for the whole group: per stream an odd-power table and an
  // accumulator, plus shared REDC scratch and the padded shared R².
  const size_t stride = 2 * k_ + 2;
  std::vector<Limb> arena(ns * (table_size * k_ + k_) + ns * stride + k_);
  Limb* tables = arena.data();                     // ns × table_size × k_
  Limb* accs = tables + ns * table_size * k_;      // ns × k_
  Limb* scratch = accs + ns * k_;                  // ns × stride
  Limb* r2 = scratch + ns * stride;                // k_ (shared)
  LoadFixed(r2_, k_, r2);

  auto table_entry = [&](size_t s, size_t idx) {
    return tables + (s * table_size + idx) * k_;
  };
  auto acc = [&](size_t s) { return accs + s * k_; };

  std::array<const Limb*, kExpBatchStreams> in;
  std::array<const Limb*, kExpBatchStreams> mul;
  std::array<Limb*, kExpBatchStreams> res;

  // ToMont every base straight into table slot 0 (base^1).
  for (size_t s = 0; s < ns; ++s) {
    LoadFixed(bases[s].limbs(), k_, acc(s));  // accumulator as staging slot
    in[s] = acc(s);
    res[s] = table_entry(s, 0);
  }
  mul.fill(r2);
  MulRoundsBatch(ns, scratch, in.data(), mul.data(), k_, res.data());

  if (table_size > 1) {
    // b2 = base², then table[i] = table[i-1]·b2 — all streams in lockstep.
    // b2 differs per stream, so it borrows each stream's accumulator slot.
    for (size_t s = 0; s < ns; ++s) {
      in[s] = table_entry(s, 0);
      res[s] = acc(s);
      mul[s] = acc(s);
    }
    SqrRoundsBatch(ns, scratch, in.data(), res.data());
    for (size_t idx = 1; idx < table_size; ++idx) {
      for (size_t s = 0; s < ns; ++s) {
        in[s] = table_entry(s, idx - 1);
        res[s] = table_entry(s, idx);
      }
      MulRoundsBatch(ns, scratch, in.data(), mul.data(), k_, res.data());
    }
  }

  // Walk the shared schedule. The first op seeds each accumulator from its
  // stream's table (same index everywhere — the exponent is shared).
  for (size_t s = 0; s < ns; ++s) {
    std::copy(table_entry(s, ops[0].table_index),
              table_entry(s, ops[0].table_index) + k_, acc(s));
    in[s] = acc(s);
    res[s] = acc(s);
  }
  for (size_t op_i = 1; op_i < ops.size(); ++op_i) {
    const WindowOp& op = ops[op_i];
    for (uint32_t q = 0; q < op.squarings; ++q) {
      SqrRoundsBatch(ns, scratch, in.data(), res.data());
    }
    if (op.table_index != WindowOp::kNoMultiply) {
      for (size_t s = 0; s < ns; ++s) mul[s] = table_entry(s, op.table_index);
      MulRoundsBatch(ns, scratch, in.data(), mul.data(), k_, res.data());
    }
  }

  // Out of the Montgomery domain: multiply by 1.
  static constexpr Limb kOne[1] = {1};
  mul.fill(kOne);
  MulRoundsBatch(ns, scratch, in.data(), mul.data(), 1, res.data());
  for (size_t s = 0; s < ns; ++s) {
    std::vector<Limb> limbs(acc(s), acc(s) + k_);
    out[s] = BigInt::FromLimbs(std::move(limbs), 1);
  }
}

std::vector<BigInt> MontgomeryCtx::ExpBatch(const std::vector<BigInt>& bases,
                                            const BigInt& exponent,
                                            ThreadPool* pool) const {
  PPD_CHECK_MSG(!exponent.IsNegative(), "negative exponent");
  std::vector<BigInt> out(bases.size());
  if (bases.empty()) return out;
  if (exponent.IsZero() || bases.size() == 1) {
    // Degenerate shapes: the scalar path is already optimal (and for a
    // zero exponent every result is the same 1).
    for (size_t i = 0; i < bases.size(); ++i) out[i] = Exp(bases[i], exponent);
    return out;
  }
  const int w = WindowBitsForExponent(exponent.BitLength());
  const std::vector<WindowOp> ops = BuildWindowSchedule(exponent, w);
  if (ifma::Available()) {
    // 8-wide AVX-512 IFMA engine: one exponentiation per vpmadd52 lane.
    // Bit-identical to Exp, so the engine choice is unobservable beyond
    // speed. A tail group of one falls back to scalar Exp (a single lane
    // would waste the other seven).
    const ifma::Ctx52 c52(modulus_, r2_);
    if (c52.ok()) {
      const size_t groups =
          (bases.size() + ifma::kIfmaLanes - 1) / ifma::kIfmaLanes;
      ParallelFor(
          groups,
          [&](size_t g) {
            const size_t begin = g * ifma::kIfmaLanes;
            const size_t nb = std::min(ifma::kIfmaLanes,
                                       bases.size() - begin);
            if (nb == 1) {
              out[begin] = Exp(bases[begin], exponent);
              return;
            }
            c52.ExpGroup(bases.data() + begin, nb, ops, w,
                         out.data() + begin);
          },
          pool);
      return out;
    }
  }
  const size_t groups =
      (bases.size() + kExpBatchStreams - 1) / kExpBatchStreams;
  ParallelFor(
      groups,
      [&](size_t g) {
        const size_t begin = g * kExpBatchStreams;
        const size_t ns = std::min(kExpBatchStreams, bases.size() - begin);
        ExpLockstep(ns, bases.data() + begin, ops, w, out.data() + begin);
      },
      pool);
  return out;
}

}  // namespace ppdbscan
