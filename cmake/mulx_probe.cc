// Configure-time probe: exits 0 when the build host's CPU can execute the
// mulx/ADX limb kernel (CPUID reports BMI2 and ADX and the instruction
// sequence produces the expected result). Used only to decide whether the
// PPDBSCAN_KERNEL=mulx-forced ctest variants are registered on this host.
#include <cpuid.h>

int main() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return 1;
  const unsigned int kBmi2Bit = 1u << 8;
  const unsigned int kAdxBit = 1u << 19;
  if ((ebx & kBmi2Bit) == 0 || (ebx & kAdxBit) == 0) return 1;
  // Execute the instructions: clear CF/OF, then 3·5=15 split as hi:lo,
  // plus two carry-free adds of 1 onto an accumulator of 4 -> 15 + 0 + 6.
  unsigned long long lo = 0, hi = 0, acc = 4, one = 1, three = 3;
  __asm__ volatile(
      "xorl %k[lo], %k[lo]\n\t"
      "adcxq %[one], %[acc]\n\t"
      "adoxq %[one], %[acc]\n\t"
      "mulxq %[three], %[lo], %[hi]"
      : [lo] "=&r"(lo), [hi] "=&r"(hi), [acc] "+r"(acc)
      : [three] "r"(three), [one] "r"(one), "d"(5ull)
      : "cc");
  return (lo + hi + acc) == 21 ? 0 : 1;
}
