# FindGMP — locate the GNU multiple-precision library.
#
# GMP is a TEST-ONLY dependency here: the bigint library is from scratch and
# GMP is used exclusively as a differential-testing oracle. Never link the
# GMP::GMP target into a ppdbscan library target.
#
# Defines:
#   GMP_FOUND
#   GMP_INCLUDE_DIR
#   GMP_LIBRARY
#   GMP::GMP imported target

find_path(GMP_INCLUDE_DIR
  NAMES gmp.h
  PATH_SUFFIXES x86_64-linux-gnu aarch64-linux-gnu)

find_library(GMP_LIBRARY NAMES gmp)

include(FindPackageHandleStandardArgs)
find_package_handle_standard_args(GMP
  REQUIRED_VARS GMP_LIBRARY GMP_INCLUDE_DIR)

if(GMP_FOUND AND NOT TARGET GMP::GMP)
  add_library(GMP::GMP UNKNOWN IMPORTED)
  set_target_properties(GMP::GMP PROPERTIES
    IMPORTED_LOCATION "${GMP_LIBRARY}"
    INTERFACE_INCLUDE_DIRECTORIES "${GMP_INCLUDE_DIR}")
endif()

mark_as_advanced(GMP_INCLUDE_DIR GMP_LIBRARY)
