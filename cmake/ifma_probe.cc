// Configure-time probe: exits 0 when the build host can execute the
// AVX-512 IFMA batch-exponentiation engine (CPUID reports AVX-512F and
// AVX-512 IFMA, the OS has enabled XSAVE, and XCR0 exposes the opmask/ZMM
// register state). Mirrors ifma::Available()'s runtime detection exactly.
// Used only to decide whether the PPDBSCAN_EXP_ENGINE=ifma-forced ctest
// variants are registered on this host — forcing the engine on an
// unsupported host aborts by design.
#include <cpuid.h>

int main() {
  if (!__builtin_cpu_supports("avx512f")) return 1;
  if (!__builtin_cpu_supports("avx512ifma")) return 1;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return 1;
  const unsigned int kOsxsaveBit = 1u << 27;
  if ((ecx & kOsxsaveBit) == 0) return 1;
  unsigned int xlo = 0, xhi = 0;
  __asm__ volatile("xgetbv" : "=a"(xlo), "=d"(xhi) : "c"(0));
  // SSE (1) + AVX (2) + opmask (5) + ZMM_Hi256 (6) + Hi16_ZMM (7).
  return (xlo & 0xE6u) == 0xE6u ? 0 : 1;
}
