// Two-process deployment over TCP: the shape a real two-hospital
// deployment takes, with each party running its own process (or machine)
// and only the framed protocol bytes crossing the network.
//
// Run in two terminals (order does not matter; the connector retries):
//
//   ./build/examples/tcp_parties alice 7001
//   ./build/examples/tcp_parties bob   7001 [host]
//
// Alice listens, Bob connects. Both generate the same synthetic dataset
// from a shared seed and keep their own half — stand-ins for their private
// databases. Everything after transport setup is ONE PartyRuntime::Connect
// (key exchange, reusable across jobs) and ONE Run call: the runtime
// negotiates the protocol configuration on the wire — a party started with
// different Eps/MinPts/comparator settings fails with a descriptive error
// instead of desyncing — then runs the §4.2 horizontal protocol and prints
// its own labels only.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/random.h"
#include "core/job.h"
#include "data/fixed_point.h"
#include "data/generators.h"
#include "data/partitioners.h"
#include "net/socket_channel.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s alice|bob <port> [host]\n", argv0);
  return 2;
}

int RunParty(PartyRole role, uint16_t port, const std::string& host) {
  // Both processes derive the same virtual database from a shared seed and
  // keep their own half — each party's half models its private table.
  SecureRng data_rng(/*seed=*/42);
  RawDataset raw = MakeTwoMoons(data_rng, /*points_per_moon=*/30,
                                /*noise_stddev=*/0.05);
  FixedPointEncoder encoder(/*scale=*/20.0);
  Dataset all = *encoder.Encode(raw);
  SecureRng split_rng(/*seed=*/7);
  HorizontalPartition split = *PartitionHorizontal(all, split_rng, 0.5);
  const Dataset& own =
      role == PartyRole::kAlice ? split.alice : split.bob;

  // Transport: Alice listens, Bob connects.
  Result<std::unique_ptr<SocketChannel>> channel =
      role == PartyRole::kAlice
          ? (std::printf("[alice] listening on port %u...\n", port),
             SocketChannel::Listen(port))
          : (std::printf("[bob] connecting to %s:%u...\n", host.c_str(),
                         port),
             SocketChannel::Connect(host, port, /*timeout_ms=*/15000));
  if (!channel.ok()) {
    std::fprintf(stderr, "transport: %s\n",
                 channel.status().ToString().c_str());
    return 1;
  }

  // The protocol configuration both parties must agree on; Run() verifies
  // the agreement on the wire before any data-derived ciphertext flows.
  ProtocolOptions options;
  options.params.eps_squared = *encoder.EncodeEpsSquared(0.3);
  options.params.min_pts = 4;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound = RecommendedComparatorBound(2, 64);

  SmcOptions smc;
  smc.paillier_bits = 512;
  smc.rsa_bits = 512;

  // One Connect (key exchange; the session is reusable across further
  // jobs on this connection), one Run.
  Result<PartyRuntime> runtime = PartyRuntime::Connect(
      std::move(*channel), SecureRng(role == PartyRole::kAlice ? 1 : 2), smc);
  if (!runtime.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 runtime.status().ToString().c_str());
    return 1;
  }
  Result<RunOutcome> outcome =
      runtime->Run(ClusteringJob::Horizontal(own, role, options));
  runtime->channel().Close();
  if (!outcome.ok()) {
    std::fprintf(stderr, "protocol: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  const char* tag = PartyRoleToString(role);
  std::printf("[%s] %zu own records -> %zu cluster(s); sent %llu bytes "
              "(negotiation %.1f ms, protocol %.0f ms)\n",
              tag, own.size(), outcome->clustering.num_clusters,
              static_cast<unsigned long long>(outcome->stats.bytes_sent),
              outcome->timings.negotiation_seconds * 1e3,
              outcome->timings.protocol_seconds * 1e3);
  std::printf("[%s] labels:", tag);
  for (int32_t l : outcome->clustering.labels) std::printf(" %d", l);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  PartyRole role;
  if (std::strcmp(argv[1], "alice") == 0) {
    role = PartyRole::kAlice;
  } else if (std::strcmp(argv[1], "bob") == 0) {
    role = PartyRole::kBob;
  } else {
    return Usage(argv[0]);
  }
  int port = std::atoi(argv[2]);
  if (port <= 0 || port > 65535) return Usage(argv[0]);
  std::string host = argc > 3 ? argv[3] : "127.0.0.1";
  return RunParty(role, static_cast<uint16_t>(port), host);
}
