// N-process deployment over TCP: the shape a real consortium deployment
// takes, one process (or machine) per party with only framed protocol
// bytes crossing the network. The example is a thin client over PartyMesh:
// every party computes the same deterministic pairwise schedule (party i
// listens for lower indices, connects to higher ones), so the processes
// can be started in any order and still assemble one full mesh.
//
// Run one terminal per party (any start order; connectors retry), e.g.
// three parties on loopback:
//
//   ./build/examples/tcp_parties 0 127.0.0.1:0,127.0.0.1:7101,127.0.0.1:7102
//   ./build/examples/tcp_parties 1 127.0.0.1:0,127.0.0.1:7101,127.0.0.1:7102
//   ./build/examples/tcp_parties 2 127.0.0.1:0,127.0.0.1:7101,127.0.0.1:7102
//
// peers[i] is party i's listen address (entry 0 is unused — party 0 only
// connects). All parties derive the same synthetic dataset from a shared
// seed and keep every P-th record — stand-ins for their private tables.
// After the mesh is up, everything is ONE PartyRuntime::ConnectMesh (the
// pairwise key exchanges, reusable across jobs) and ONE Run call: the
// negotiation round makes a party started with different Eps/MinPts/
// comparator settings fail descriptively instead of desyncing. For a
// long-lived daemon that accepts many jobs over one mesh, see
// `ppdbscan_cli serve`.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/job.h"
#include "data/fixed_point.h"
#include "data/generators.h"
#include "net/party_mesh.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <party-index> <host:port,host:port,...>\n"
               "       one comma-separated listen endpoint per party;\n"
               "       entry 0 is unused (party 0 only connects)\n",
               argv0);
  return 2;
}

Result<std::vector<MeshEndpoint>> ParsePeers(const std::string& spec) {
  std::vector<MeshEndpoint> endpoints;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string entry = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("expected host:port, got '" + entry +
                                     "'");
    }
    int port = std::atoi(entry.c_str() + colon + 1);
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument("bad port in '" + entry + "'");
    }
    endpoints.push_back({entry.substr(0, colon),
                         static_cast<uint16_t>(port)});
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (endpoints.size() < 2) {
    return Status::InvalidArgument("need >= 2 endpoints");
  }
  return endpoints;
}

int RunParty(size_t index, const std::vector<MeshEndpoint>& endpoints) {
  const size_t parties = endpoints.size();

  // Every process derives the same virtual database from a shared seed and
  // keeps every P-th record — its share models its private table.
  SecureRng data_rng(/*seed=*/42);
  RawDataset raw = MakeTwoMoons(data_rng, /*points_per_moon=*/30,
                                /*noise_stddev=*/0.05);
  FixedPointEncoder encoder(/*scale=*/20.0);
  Dataset all = *encoder.Encode(raw);
  Dataset own(all.dims());
  for (size_t i = index; i < all.size(); i += parties) {
    PPD_CHECK(own.Add(all.point(i)).ok());
  }

  // Transport: the deterministic pairwise schedule, with per-link retry so
  // start order does not matter.
  std::printf("[party %zu] establishing %zu-party mesh...\n", index, parties);
  Result<PartyMesh> mesh = PartyMesh::Establish(endpoints, index);
  if (!mesh.ok()) {
    std::fprintf(stderr, "mesh: %s\n", mesh.status().ToString().c_str());
    return 1;
  }

  // The protocol configuration all parties must agree on; Run() verifies
  // the agreement on every link before any data-derived ciphertext flows.
  ProtocolOptions options;
  options.params.eps_squared = *encoder.EncodeEpsSquared(0.3);
  options.params.min_pts = 4;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound = RecommendedComparatorBound(2, 64);

  SmcOptions smc;
  smc.paillier_bits = 512;
  smc.rsa_bits = 512;

  // One ConnectMesh (pairwise key exchanges; the sessions are reusable
  // across further jobs on this mesh), one Run.
  Result<PartyRuntime> runtime = PartyRuntime::ConnectMesh(
      mesh->links(), index, SecureRng(/*seed=*/1 + index), smc);
  if (!runtime.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 runtime.status().ToString().c_str());
    return 1;
  }
  Result<RunOutcome> outcome = runtime->Run(
      ClusteringJob::Multiparty(own, index, parties, options));
  mesh->CloseAll();
  if (!outcome.ok()) {
    std::fprintf(stderr, "protocol: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("[party %zu] %zu own records -> %zu cluster(s); sent %llu "
              "bytes (negotiation %.1f ms, protocol %.0f ms)\n",
              index, own.size(), outcome->clustering.num_clusters,
              static_cast<unsigned long long>(outcome->stats.bytes_sent),
              outcome->timings.negotiation_seconds * 1e3,
              outcome->timings.protocol_seconds * 1e3);
  std::printf("[party %zu] labels:", index);
  for (int32_t l : outcome->clustering.labels) std::printf(" %d", l);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  char* end = nullptr;
  long index = std::strtol(argv[1], &end, 10);
  if (end == argv[1] || *end != '\0' || index < 0) return Usage(argv[0]);
  Result<std::vector<MeshEndpoint>> endpoints = ParsePeers(argv[2]);
  if (!endpoints.ok()) {
    std::fprintf(stderr, "peers: %s\n",
                 endpoints.status().ToString().c_str());
    return Usage(argv[0]);
  }
  if (static_cast<size_t>(index) >= endpoints->size()) return Usage(argv[0]);
  return RunParty(static_cast<size_t>(index), *endpoints);
}
