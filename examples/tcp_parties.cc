// Two-process deployment over TCP: the shape a real two-hospital
// deployment takes, with each party running its own process (or machine)
// and only the framed protocol bytes crossing the network.
//
// Run in two terminals (order does not matter; the connector retries):
//
//   ./build/examples/tcp_parties alice 7001
//   ./build/examples/tcp_parties bob   7001 [host]
//
// Alice listens, Bob connects. Both generate the same synthetic dataset
// from a shared seed and keep their own half — stand-ins for their private
// databases — then run the §4.2 horizontal protocol and print their own
// labels only.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/random.h"
#include "core/horizontal.h"
#include "core/options.h"
#include "data/fixed_point.h"
#include "data/generators.h"
#include "data/partitioners.h"
#include "net/socket_channel.h"
#include "smc/session.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s alice|bob <port> [host]\n", argv0);
  return 2;
}

int RunParty(PartyRole role, uint16_t port, const std::string& host) {
  // Both processes derive the same virtual database from a shared seed and
  // keep their own half — each party's half models its private table.
  SecureRng data_rng(/*seed=*/42);
  RawDataset raw = MakeTwoMoons(data_rng, /*points_per_moon=*/30,
                                /*noise_stddev=*/0.05);
  FixedPointEncoder encoder(/*scale=*/20.0);
  Dataset all = *encoder.Encode(raw);
  SecureRng split_rng(/*seed=*/7);
  HorizontalPartition split = *PartitionHorizontal(all, split_rng, 0.5);
  const Dataset& own =
      role == PartyRole::kAlice ? split.alice : split.bob;

  // Transport.
  std::unique_ptr<SocketChannel> channel;
  if (role == PartyRole::kAlice) {
    std::printf("[alice] listening on port %u...\n", port);
    Result<std::unique_ptr<SocketChannel>> ch = SocketChannel::Listen(port);
    if (!ch.ok()) {
      std::fprintf(stderr, "listen: %s\n", ch.status().ToString().c_str());
      return 1;
    }
    channel = std::move(*ch);
  } else {
    std::printf("[bob] connecting to %s:%u...\n", host.c_str(), port);
    Result<std::unique_ptr<SocketChannel>> ch =
        SocketChannel::Connect(host, port, /*timeout_ms=*/15000);
    if (!ch.ok()) {
      std::fprintf(stderr, "connect: %s\n", ch.status().ToString().c_str());
      return 1;
    }
    channel = std::move(*ch);
  }

  // Session (one-time public-key exchange), then the protocol proper.
  SecureRng rng(role == PartyRole::kAlice ? 1 : 2);
  SmcOptions smc;
  smc.paillier_bits = 512;
  smc.rsa_bits = 512;
  Result<SmcSession> session = SmcSession::Establish(*channel, rng, smc);
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  ProtocolOptions options;
  options.params.eps_squared = *encoder.EncodeEpsSquared(0.3);
  options.params.min_pts = 4;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound = RecommendedComparatorBound(2, 64);

  Result<PartyClusteringResult> result =
      RunHorizontalDbscan(*channel, *session, own, role, options, rng);
  channel->Close();
  if (!result.ok()) {
    std::fprintf(stderr, "protocol: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const char* tag = role == PartyRole::kAlice ? "alice" : "bob";
  std::printf("[%s] %zu own records -> %zu cluster(s); sent %llu bytes\n",
              tag, own.size(), result->num_clusters,
              static_cast<unsigned long long>(
                  channel->stats().bytes_sent));
  std::printf("[%s] labels:", tag);
  for (int32_t l : result->labels) std::printf(" %d", l);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  PartyRole role;
  if (std::strcmp(argv[1], "alice") == 0) {
    role = PartyRole::kAlice;
  } else if (std::strcmp(argv[1], "bob") == 0) {
    role = PartyRole::kBob;
  } else {
    return Usage(argv[0]);
  }
  int port = std::atoi(argv[2]);
  if (port <= 0 || port > 65535) return Usage(argv[0]);
  std::string host = argc > 3 ? argv[3] : "127.0.0.1";
  return RunParty(role, static_cast<uint16_t>(port), host);
}
