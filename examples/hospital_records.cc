// The paper's §1 motivating scenario: two hospitals each hold medical
// records (horizontally partitioned — same attributes, disjoint patients)
// and want to find patient phenotype clusters across the union without
// exchanging records.
//
// This example contrasts the two §4.2 / §5 protocol variants:
//   * basic      — reveals, per core-point test, HOW MANY of the other
//                  hospital's patients fall in the neighbourhood
//                  (Theorem 9);
//   * enhanced   — reveals only the single bit "core or not" (Theorem 11).
// The DisclosureLog prints exactly what crossed the trust boundary in each
// run, and the cost delta of the stronger guarantee.
//
// Patients are synthetic: four standardized vitals (age, BMI, systolic BP,
// HbA1c), three latent cohorts plus outliers. Generator truth is used only
// for reporting.

#include <cstdio>

#include "common/random.h"
#include "core/run.h"
#include "data/fixed_point.h"
#include "data/generators.h"
#include "data/partitioners.h"
#include "eval/leakage.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

/// Three patient cohorts in standardized-vitals space plus unassigned
/// outliers. Blobs are the right model: cohorts are ellipsoidal in
/// normalized lab values; the arbitrary-shape workloads live in the other
/// examples.
RawDataset MakePatients(SecureRng& rng) {
  RawDataset cohorts = MakeBlobs(rng, /*num_clusters=*/3,
                                 /*points_per_cluster=*/14, /*dims=*/4,
                                 /*stddev=*/0.4, /*box=*/4.0);
  AddUniformNoise(cohorts, rng, /*count=*/6, /*box=*/6.0);
  return cohorts;
}

void PrintDisclosures(const char* who, const DisclosureLog& log) {
  for (const std::string& category : log.Categories()) {
    std::printf("    %-8s %-22s events=%-4llu distinct=%-4llu "
                "entropy=%.2f bits\n",
                who, category.c_str(),
                static_cast<unsigned long long>(log.Count(category)),
                static_cast<unsigned long long>(log.DistinctValues(category)),
                log.EntropyBits(category));
  }
}

int Run() {
  SecureRng data_rng(/*seed=*/2024);
  RawDataset raw = MakePatients(data_rng);
  FixedPointEncoder encoder(/*scale=*/16.0);
  Dataset all = *encoder.Encode(raw);

  SecureRng split_rng(/*seed=*/3);
  HorizontalPartition hospitals =
      *PartitionHorizontal(all, split_rng, /*alice_fraction=*/0.55);
  std::printf("Hospital A: %zu patients   Hospital B: %zu patients   "
              "attributes: %zu\n\n",
              hospitals.alice.size(), hospitals.bob.size(), all.dims());

  SmcOptions smc;
  smc.paillier_bits = 512;
  smc.rsa_bits = 512;
  ProtocolOptions options;
  options.params.eps_squared = *encoder.EncodeEpsSquared(1.6);
  options.params.min_pts = 5;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound =
      RecommendedComparatorBound(all.dims(), /*max_abs_coord=*/128);

  // Both runs go through the ClusteringJob/PartyRuntime facade; the
  // negotiation round guarantees the two hospitals agree on every protocol
  // parameter (mode included) before any patient-derived ciphertext flows.
  auto run_jobs = [&](const ProtocolOptions& agreed) {
    return ExecuteLocal(
        {{ClusteringJob::Horizontal(hospitals.alice, PartyRole::kAlice,
                                    agreed),
          /*seed=*/0x0a11ce},
         {ClusteringJob::Horizontal(hospitals.bob, PartyRole::kBob, agreed),
          /*seed=*/0x0b0b}},
        smc);
  };

  ResultTable table({"protocol", "clusters A", "clusters B", "bytes",
                     "count disclosures", "bit disclosures"});

  // --- Basic protocol (§4.2) ---------------------------------------------
  Result<std::vector<RunOutcome>> basic = run_jobs(options);
  if (!basic.ok()) {
    std::fprintf(stderr, "basic: %s\n", basic.status().ToString().c_str());
    return 1;
  }
  const RunOutcome& basic_a = (*basic)[0];
  const RunOutcome& basic_b = (*basic)[1];
  std::printf("Basic protocol disclosures (Theorem 9):\n");
  PrintDisclosures("A saw", basic_a.disclosures);
  PrintDisclosures("B saw", basic_b.disclosures);
  table.AddRow({"basic (Alg. 3/4)",
                ResultTable::Fmt(uint64_t{basic_a.clustering.num_clusters}),
                ResultTable::Fmt(uint64_t{basic_b.clustering.num_clusters}),
                ResultTable::Fmt(basic_a.stats.total_bytes()),
                ResultTable::Fmt(basic_a.disclosures.Count(
                    "peer_neighbor_count")),
                ResultTable::Fmt(basic_a.disclosures.Count(
                    "peer_core_bit"))});

  // --- Enhanced protocol (§5) ---------------------------------------------
  options.mode = HorizontalMode::kEnhanced;
  Result<std::vector<RunOutcome>> enhanced = run_jobs(options);
  if (!enhanced.ok()) {
    std::fprintf(stderr, "enhanced: %s\n",
                 enhanced.status().ToString().c_str());
    return 1;
  }
  const RunOutcome& enh_a = (*enhanced)[0];
  const RunOutcome& enh_b = (*enhanced)[1];
  std::printf("\nEnhanced protocol disclosures (Theorem 11):\n");
  PrintDisclosures("A saw", enh_a.disclosures);
  PrintDisclosures("B saw", enh_b.disclosures);
  table.AddRow({"enhanced (Alg. 7/8)",
                ResultTable::Fmt(uint64_t{enh_a.clustering.num_clusters}),
                ResultTable::Fmt(uint64_t{enh_b.clustering.num_clusters}),
                ResultTable::Fmt(enh_a.stats.total_bytes()),
                ResultTable::Fmt(enh_a.disclosures.Count(
                    "peer_neighbor_count")),
                ResultTable::Fmt(enh_a.disclosures.Count(
                    "peer_core_bit"))});

  std::printf("\n%s\n", table.ToMarkdown().c_str());

  const bool identical =
      basic_a.clustering.labels == enh_a.clustering.labels &&
      basic_b.clustering.labels == enh_b.clustering.labels;
  std::printf("Clusterings identical across variants: %s\n",
              identical ? "yes" : "NO (unexpected)");
  const double byte_ratio =
      static_cast<double>(enh_a.stats.total_bytes()) /
      static_cast<double>(basic_a.stats.total_bytes());
  std::printf("Bytes, enhanced vs basic: %.2fx — the batched §5 dot product "
              "sends one ciphertext\nper peer point where basic HDP sends "
              "one per attribute, so the stronger guarantee\ncan even be "
              "cheaper at low MinPts (selection comparisons scale with k, "
              "not m).\n",
              byte_ratio);
  return identical ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
