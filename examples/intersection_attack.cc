// The Figure 1 linkage attack, quantified. Kumar & Rangan's protocol [14]
// lets Bob learn WHICH of his records' neighbourhoods contain Alice's
// record A — so Bob can intersect those disks and corner A in the small
// gray region of Figure 1. The paper's protocols permute the presented
// point set per query, so Bob only learns "each disk contains SOME record
// of Alice's", leaving the whole union feasible.
//
// This example replays both disclosure regimes over the actual wire
// protocol (Kumar baseline vs permuted HDP batch) and then Monte-Carlo
// measures the attacker's feasible region under each, reproducing the
// Figure 1 geometry: three Bob points whose Eps-disks pairwise overlap in
// a small lens around Alice's record.

#include <cstdio>

#include <thread>

#include "baseline/attack.h"
#include "baseline/kumar.h"
#include "common/random.h"
#include "core/job.h"
#include "data/fixed_point.h"
#include "dbscan/dataset.h"
#include "net/memory_channel.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

int Run() {
  // Figure 1 geometry (continuous coordinates): Bob's B1, B2, B3 around
  // Alice's single record A = (0, 0); Eps chosen so all three disks
  // contain A but their triple intersection is a thin lens.
  const std::vector<std::vector<double>> bob_raw = {
      {-1.7, 0.4}, {1.6, 0.9}, {0.3, -1.8}};
  const std::vector<double> alice_raw = {0.0, 0.0};
  const double eps = 2.0;

  FixedPointEncoder encoder(/*scale=*/10.0);
  Dataset bob_points(2);
  for (const auto& p : bob_raw) {
    PPD_CHECK(bob_points
                  .Add({*encoder.EncodeScalar(p[0]),
                        *encoder.EncodeScalar(p[1])})
                  .ok());
  }
  Dataset alice_points(2);
  PPD_CHECK(alice_points
                .Add({*encoder.EncodeScalar(alice_raw[0]),
                      *encoder.EncodeScalar(alice_raw[1])})
                .ok());

  ProtocolOptions options;
  options.params.eps_squared = *encoder.EncodeEpsSquared(eps);
  options.params.min_pts = 2;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound = RecommendedComparatorBound(2, 64);

  // --- Replay the Kumar disclosure over the real wire ---------------------
  // The PartyRuntime facade establishes the reusable SMC session (key
  // exchange) on each side; the Kumar baseline is then layered over the
  // runtime's session/channel/rng — the supported path for custom
  // sub-protocols that are not one of the facade's schemes.
  auto [bob_ch, alice_ch] = MemoryChannel::CreatePair();
  SmcOptions smc;
  smc.paillier_bits = 512;
  smc.rsa_bits = 512;
  Result<PartyRuntime> bob_runtime = Status::Internal("unset");
  Result<PartyRuntime> alice_runtime = Status::Internal("unset");
  {
    std::thread tb([&] {
      bob_runtime = PartyRuntime::Connect(*bob_ch, SecureRng(1), smc);
    });
    alice_runtime = PartyRuntime::Connect(*alice_ch, SecureRng(2), smc);
    tb.join();
  }
  PPD_CHECK(bob_runtime.ok() && alice_runtime.ok());

  Result<LinkedNeighbourhoods> linked = Status::Internal("unset");
  Status responder = Status::Ok();
  {
    std::thread tb([&] {
      // Bob is the attacker: he queries with each of his points.
      linked = KumarDisclosureQuerier(bob_runtime->channel(),
                                      bob_runtime->session(), bob_points,
                                      options, bob_runtime->rng());
    });
    responder = KumarDisclosureResponder(alice_runtime->channel(),
                                         alice_runtime->session(),
                                         alice_points, options,
                                         alice_runtime->rng());
    tb.join();
  }
  PPD_CHECK(linked.ok() && responder.ok());

  std::printf("Kumar-style disclosure (linked bits Bob received):\n");
  std::vector<size_t> containing;
  for (size_t k = 0; k < linked->contains.size(); ++k) {
    bool hit = linked->contains[k][0];
    std::printf("  B%zu neighbourhood contains Alice's record #0: %s\n",
                k + 1, hit ? "yes" : "no");
    if (hit) containing.push_back(k);
  }

  // --- Quantify both regimes ----------------------------------------------
  SecureRng mc_rng(/*seed=*/31337);
  AttackEstimate estimate = EstimateFeasibleRegion(
      bob_raw, containing, eps, /*box_min=*/-5.0, /*box_max=*/5.0,
      /*samples=*/200000, mc_rng);

  std::printf("\nFeasible region for Alice's record (box area %.1f):\n",
              estimate.box_area);
  std::printf("  linked bits   (Kumar [14])   : %.2f  <- Figure 1's gray "
              "lens\n",
              estimate.linked_area);
  std::printf("  unlinked bits (this paper)   : %.2f  <- union of all "
              "disks\n",
              estimate.unlinked_area);
  std::printf("  localization factor          : %.1fx tighter under the "
              "linked regime\n",
              estimate.LocalizationFactor());
  std::printf("\nThe paper's per-query permutation (Algorithms 3/4) makes "
              "the bits unlinkable,\nso Bob cannot do better than the "
              "union — the Figure 1 attack is defeated.\n");
  return estimate.LocalizationFactor() > 2.0 ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
