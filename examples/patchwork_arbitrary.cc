// Arbitrarily partitioned data (§4.4): ownership is decided per CELL, not
// per row or column — the model of Jagannathan & Wright that the paper
// adopts for its most general protocol. Each record's squared distance
// decomposes into a vertical part (attributes where both records' cells
// belong to one party) and a horizontal part (attributes where the two
// records' cells belong to different parties); the horizontal part runs
// through HDP, and one final YMPP/comparison merges the shares against
// Eps² (Figure 4's decomposition).
//
// The demo builds a mostly-vertical partition with 15% of cells flipped —
// the "mostly, but not completely, partitioned" situation §4.4 argues is
// the practical one — and checks the output against centralized DBSCAN.

#include <cstdio>

#include "common/random.h"
#include "core/run.h"
#include "data/fixed_point.h"
#include "data/generators.h"
#include "data/partitioners.h"
#include "dbscan/dbscan.h"
#include "eval/metrics.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

int Run() {
  SecureRng rng(/*seed=*/99);
  RawDataset raw = MakeBlobs(rng, /*num_clusters=*/3,
                             /*points_per_cluster=*/15, /*dims=*/3,
                             /*stddev=*/0.5, /*box=*/5.0);
  AddUniformNoise(raw, rng, /*count=*/5, /*box=*/7.0);
  FixedPointEncoder encoder(/*scale=*/12.0);
  Dataset joint = *encoder.Encode(raw);

  SecureRng split_rng(/*seed=*/5);
  ArbitraryPartition patchwork =
      *PartitionArbitrary(joint, split_rng, /*alice_cell_fraction=*/0.5);

  size_t alice_cells = 0;
  size_t total_cells = joint.size() * joint.dims();
  for (const auto& row : patchwork.alice.owned) {
    for (uint8_t o : row) alice_cells += o;
  }
  std::printf("Patchwork ownership: Alice holds %zu / %zu cells (%.0f%%)\n",
              alice_cells, total_cells,
              100.0 * static_cast<double>(alice_cells) /
                  static_cast<double>(total_cells));

  SmcOptions smc;
  smc.paillier_bits = 512;
  smc.rsa_bits = 512;
  ProtocolOptions options;
  options.params.eps_squared = *encoder.EncodeEpsSquared(1.7);
  options.params.min_pts = 4;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound =
      RecommendedComparatorBound(joint.dims(), /*max_abs_coord=*/128);

  // Each party's job carries its ArbitraryPartyView (public ownership
  // masks, private values); the facade runs §4.4 end to end.
  Result<std::vector<RunOutcome>> outcome = ExecuteLocal(
      {{ClusteringJob::Arbitrary(patchwork.alice, PartyRole::kAlice, options),
        /*seed=*/0x9a7c},
       {ClusteringJob::Arbitrary(patchwork.bob, PartyRole::kBob, options),
        /*seed=*/0x30b5}},
      smc);
  if (!outcome.ok()) {
    std::fprintf(stderr, "protocol: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const RunOutcome& alice = (*outcome)[0];

  DbscanResult central = RunDbscan(joint, options.params);
  std::printf("Clusters found: %zu (centralized: %zu)\n",
              alice.clustering.num_clusters, central.num_clusters);
  std::printf("ARI(joint protocol, centralized) = %.3f (expect 1.000)\n",
              AdjustedRandIndex(alice.clustering.labels, central.labels));
  std::printf("Bytes exchanged: %llu\n",
              static_cast<unsigned long long>(alice.stats.total_bytes()));
  std::printf("\nEvery record is split between the parties, so per §3.3 "
              "both learn the full\nrecord→cluster map — and nothing else "
              "about the other party's cells.\n");
  return SameClustering(alice.clustering.labels, central.labels) ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
