// Vertical partitioning (§4.3): a bank and an insurer hold DIFFERENT
// attributes of the SAME customers (joined by a shared customer id). The
// bank holds income and account balance; the insurer holds claim frequency
// and a risk score. Jointly they can find customer segments that neither
// could see alone — e.g. a "low income / high claims" segment invisible in
// either projection — without exchanging attribute values.
//
// The VDP distance protocol gives each party only the decision bit
// dist(d_x, d_y) <= Eps per pair (Theorem 10); both parties end up with
// the full record→cluster map, which is the prescribed output for
// vertically partitioned data (§3.3).

#include <cstdio>

#include "common/random.h"
#include "core/run.h"
#include "data/fixed_point.h"
#include "data/generators.h"
#include "data/partitioners.h"
#include "dbscan/dbscan.h"
#include "eval/metrics.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

/// Customers in 4-D: (income, balance | bank), (claims, risk | insurer).
/// Two segments are separable only in the JOINT space: both project onto
/// overlapping ranges in each party's 2-D view.
RawDataset MakeCustomers(SecureRng& rng, size_t per_segment) {
  RawDataset out;
  out.dims = 4;
  // Segment 0: modest income, low balance, low claims, low risk.
  // Segment 1: modest income, low balance, HIGH claims, HIGH risk.
  // Segment 2: high income, high balance, low claims, moderate risk.
  const double centers[3][4] = {
      {-2.0, -2.0, -2.0, -2.0},
      {-2.0, -2.0, 2.0, 2.0},
      {2.5, 2.5, -2.0, 0.0},
  };
  for (int k = 0; k < 3; ++k) {
    for (size_t i = 0; i < per_segment; ++i) {
      std::vector<double> p(4);
      for (int t = 0; t < 4; ++t) {
        p[t] = centers[k][t] + rng.NextGaussian() * 0.45;
      }
      out.points.push_back(std::move(p));
      out.true_labels.push_back(k);
    }
  }
  return out;
}

int Run() {
  SecureRng rng(/*seed=*/77);
  RawDataset raw = MakeCustomers(rng, /*per_segment=*/20);
  FixedPointEncoder encoder(/*scale=*/16.0);
  Dataset joint = *encoder.Encode(raw);

  // Bank = Alice owns attributes [0, 2); insurer = Bob owns [2, 4).
  VerticalPartition split = *PartitionVertical(joint, /*split_dim=*/2);
  std::printf("Bank owns %zu attributes, insurer owns %zu, %zu shared "
              "customers\n\n",
              split.split_dim, joint.dims() - split.split_dim, joint.size());

  // Neither party's projection separates segments 0 and 1 (they differ
  // only in the other party's attributes). Show that with a local DBSCAN.
  DbscanParams params{.eps_squared = *encoder.EncodeEpsSquared(1.5),
                      .min_pts = 5};
  DbscanResult bank_only = RunDbscan(split.alice, params);
  Labels truth(raw.true_labels.begin(), raw.true_labels.end());
  std::printf("Bank clustering alone:    %zu clusters, ARI vs truth %.3f\n",
              bank_only.num_clusters,
              AdjustedRandIndex(bank_only.labels, truth));

  SmcOptions smc;
  smc.paillier_bits = 512;
  smc.rsa_bits = 512;
  ProtocolOptions options;
  options.params = params;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound =
      RecommendedComparatorBound(joint.dims(), /*max_abs_coord=*/128);

  // One vertical ClusteringJob per institution, run through the
  // PartyRuntime facade (the bank drives as Alice by convention).
  Result<std::vector<RunOutcome>> outcome = ExecuteLocal(
      {{ClusteringJob::Vertical(split.alice, PartyRole::kAlice, options),
        /*seed=*/0xba2c},
       {ClusteringJob::Vertical(split.bob, PartyRole::kBob, options),
        /*seed=*/0x12a5}},
      smc);
  if (!outcome.ok()) {
    std::fprintf(stderr, "protocol: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const RunOutcome& bank = (*outcome)[0];
  const RunOutcome& insurer = (*outcome)[1];
  std::printf("Joint private clustering: %zu clusters, ARI vs truth %.3f\n",
              bank.clustering.num_clusters,
              AdjustedRandIndex(bank.clustering.labels, truth));

  DbscanResult central = RunDbscan(joint, params);
  std::printf("Centralized reference:    %zu clusters, ARI vs joint "
              "protocol %.3f (expect 1.000)\n",
              central.num_clusters,
              AdjustedRandIndex(bank.clustering.labels, central.labels));
  std::printf("\nBoth parties hold the identical record→cluster map: %s\n",
              bank.clustering.labels == insurer.clustering.labels ? "yes"
                                                                  : "NO");
  std::printf("Bytes exchanged: %llu (VDP runs one secure comparison per "
              "candidate pair)\n",
              static_cast<unsigned long long>(bank.stats.total_bytes()));
  return SameClustering(bank.clustering.labels, central.labels) ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
