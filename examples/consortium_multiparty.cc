// Multi-party extension (§1: "the two-party algorithm can be extended to
// multi-party cases"): a consortium of FOUR hospitals jointly clusters
// patient phenotypes. Every pairwise link runs the unmodified two-party
// sub-protocols (HDP + secure comparison) over its own key exchange, and a
// scanning hospital's core test sums one private count per peer — so
// Theorem 9's disclosure bound applies per link and the composition
// theorem covers the whole run (core/multiparty.h).
//
// The demo shows a phenotype cluster that NO hospital can see alone: each
// holds too few of its patients for the density threshold, but the
// consortium's pooled density crosses it.

#include <cstdio>

#include "common/random.h"
#include "core/run.h"
#include "data/fixed_point.h"
#include "data/generators.h"
#include "dbscan/dbscan.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

int Run() {
  constexpr size_t kHospitals = 4;

  // One shared rare-phenotype cohort (12 patients scattered across all
  // hospitals) plus a hospital-specific common cohort each.
  SecureRng rng(314);
  RawDataset shared = MakeBlobs(rng, 1, 12, 3, 0.4, 1.0);
  FixedPointEncoder encoder(10.0);
  Dataset shared_enc = *encoder.Encode(shared);

  std::vector<Dataset> hospitals(kHospitals, Dataset(3));
  Dataset pooled(3);
  for (size_t i = 0; i < shared_enc.size(); ++i) {
    PPD_CHECK(hospitals[i % kHospitals].Add(shared_enc.point(i)).ok());
    PPD_CHECK(pooled.Add(shared_enc.point(i)).ok());
  }
  // Hospital-specific cohorts, far from the shared one and each dense on
  // its own.
  for (size_t h = 0; h < kHospitals; ++h) {
    const int64_t base = 200 + 100 * static_cast<int64_t>(h);
    for (int64_t dx = 0; dx < 2; ++dx) {
      for (int64_t dy = 0; dy < 3; ++dy) {
        std::vector<int64_t> p{base + dx, base + dy, 0};
        PPD_CHECK(hospitals[h].Add(p).ok());
        PPD_CHECK(pooled.Add(p).ok());
      }
    }
  }

  ProtocolOptions options;
  options.params.eps_squared = *encoder.EncodeEpsSquared(1.2);
  options.params.min_pts = 5;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound = RecommendedComparatorBound(3, 512);
  SmcOptions smc;
  smc.paillier_bits = 384;
  smc.rsa_bits = 384;

  // What each hospital finds WITHOUT the consortium.
  const size_t shared_per_hospital = shared_enc.size() / kHospitals;
  std::printf("Rare-phenotype patients per hospital (of %zu total):\n",
              shared_enc.size());
  for (size_t h = 0; h < kHospitals; ++h) {
    DbscanResult local = RunDbscan(hospitals[h], options.params);
    size_t rare_clustered = 0;  // rare members sit at indices 0..k-1
    for (size_t i = 0; i < shared_per_hospital; ++i) {
      rare_clustered += local.labels[i] >= 0 ? 1 : 0;
    }
    std::printf("  hospital %zu: %zu patients; local DBSCAN clusters %zu of "
                "its %zu rare-cohort members\n",
                h, hospitals[h].size(), rare_clustered,
                shared_per_hospital);
  }

  // The consortium run: one kMultiparty ClusteringJob per hospital, run
  // over the in-process mesh by the PartyRuntime facade. The negotiation
  // round on every pairwise link guarantees all four hospitals agree on
  // Eps/MinPts/comparator before any patient-derived ciphertext flows.
  std::vector<LocalJob> jobs;
  for (size_t h = 0; h < kHospitals; ++h) {
    jobs.push_back({ClusteringJob::Multiparty(hospitals[h], h, kHospitals,
                                              options),
                    /*seed=*/0x9bd1 + h});
  }
  Result<std::vector<RunOutcome>> outcome = ExecuteLocal(jobs, smc);
  if (!outcome.ok()) {
    std::fprintf(stderr, "protocol: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  ResultTable table({"hospital", "patients", "clusters", "rare cohort "
                     "recovered", "bytes sent", "peer counts learned"});
  DbscanResult central = RunDbscan(pooled, options.params);
  bool all_recovered = true;
  for (size_t h = 0; h < kHospitals; ++h) {
    const PartyClusteringResult& r = (*outcome)[h].clustering;
    // This hospital's shared-cohort members sit at indices 0..k-1 (they
    // were added first); recovered = all of them clustered.
    bool recovered = true;
    for (size_t i = 0; i < shared_per_hospital; ++i) {
      recovered = recovered && r.labels[i] >= 0;
    }
    all_recovered = all_recovered && recovered;
    table.AddRow({ResultTable::Fmt(static_cast<uint64_t>(h)),
                  ResultTable::Fmt(uint64_t{hospitals[h].size()}),
                  ResultTable::Fmt(uint64_t{r.num_clusters}),
                  recovered ? "yes" : "NO",
                  ResultTable::Fmt((*outcome)[h].stats.bytes_sent),
                  ResultTable::Fmt((*outcome)[h].disclosures.Count(
                      "peer_neighbor_count"))});
  }
  std::printf("\n%s", table.ToMarkdown().c_str());
  std::printf("\nPooled (centralized) DBSCAN finds %zu clusters; the rare "
              "cohort exists only\nin the joint density — no hospital's "
              "local run clusters all of its members,\nbut every hospital "
              "recovers them through the consortium protocol.\n",
              central.num_clusters);
  return all_recovered ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
