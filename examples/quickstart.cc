// Quickstart: two parties jointly cluster a dataset with the paper's
// horizontal protocol (§4.2) without revealing their points to each other.
//
//   1. Generate three Gaussian cohorts plus outliers.
//   2. Split the records randomly between Alice and Bob (horizontal
//      partitioning, paper Figure 2).
//   3. Build one ClusteringJob per party and run the privacy-preserving
//      protocol with real cryptography (Paillier multiplication protocol +
//      blinded secure comparison) through the PartyRuntime facade; print
//      what each party learned, what it cost, and how the joint result
//      compares to centralized DBSCAN on the pooled data.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
// Note on semantics: the paper's Algorithm 3/4 expands clusters through a
// party's OWN points only (the other party's points contribute density but
// are never used as seeds), so a cluster that is connected only through
// the other party's records splits. Dense blob-shaped clusters survive any
// split; the thin-curve workloads where the effect bites are measured by
// bench_accuracy and the cross_party_merge extension that repairs it is
// shown in tests/horizontal_test.cc.

#include <cstdio>

#include "common/random.h"
#include "core/run.h"
#include "data/fixed_point.h"
#include "data/generators.h"
#include "data/partitioners.h"
#include "dbscan/dbscan.h"
#include "eval/metrics.h"

namespace {

using namespace ppdbscan;  // NOLINT: example brevity

int Run() {
  // --- 1. Workload -------------------------------------------------------
  SecureRng data_rng(/*seed=*/42);
  RawDataset raw = MakeBlobs(data_rng, /*num_clusters=*/3,
                             /*points_per_cluster=*/16, /*dims=*/2,
                             /*stddev=*/0.5, /*box=*/5.0);
  AddUniformNoise(raw, data_rng, /*count=*/4, /*box=*/8.0);

  // Protocol arithmetic is exact over integers: encode doubles at a fixed
  // scale (1 coordinate unit = 12 integer steps).
  FixedPointEncoder encoder(/*scale=*/12.0);
  Result<Dataset> encoded = encoder.Encode(raw);
  if (!encoded.ok()) {
    std::fprintf(stderr, "encode: %s\n", encoded.status().ToString().c_str());
    return 1;
  }

  // --- 2. Horizontal split ------------------------------------------------
  SecureRng split_rng(/*seed=*/7);
  Result<HorizontalPartition> split =
      PartitionHorizontal(*encoded, split_rng, /*alice_fraction=*/0.5);
  if (!split.ok()) {
    std::fprintf(stderr, "split: %s\n", split.status().ToString().c_str());
    return 1;
  }
  std::printf("Alice holds %zu records, Bob holds %zu records (m = %zu)\n",
              split->alice.size(), split->bob.size(), split->alice.dims());

  // --- 3. Protocol run ----------------------------------------------------
  // Both parties must agree on the ProtocolOptions; PartyRuntime verifies
  // that agreement on the wire before any protocol traffic flows.
  SmcOptions smc;
  smc.paillier_bits = 384;  // demo size; use >= 2048 in production
  smc.rsa_bits = 384;
  ProtocolOptions options;
  options.params.eps_squared = *encoder.EncodeEpsSquared(1.1);
  options.params.min_pts = 4;
  options.comparator.kind = ComparatorKind::kBlindedPaillier;
  options.comparator.magnitude_bound =
      RecommendedComparatorBound(encoded->dims(), /*max_abs_coord=*/128);

  Result<std::vector<RunOutcome>> outcome = ExecuteLocal(
      {{ClusteringJob::Horizontal(split->alice, PartyRole::kAlice, options),
        /*seed=*/0x0a11ce},
       {ClusteringJob::Horizontal(split->bob, PartyRole::kBob, options),
        /*seed=*/0x0b0b}},
      smc);
  if (!outcome.ok()) {
    std::fprintf(stderr, "protocol: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const RunOutcome& alice = (*outcome)[0];
  const RunOutcome& bob = (*outcome)[1];

  std::printf("\nAlice found %zu cluster(s) over her records\n",
              alice.clustering.num_clusters);
  std::printf("Bob   found %zu cluster(s) over his records\n",
              bob.clustering.num_clusters);
  std::printf("Communication: Alice sent %llu bytes in %llu frames "
              "(negotiation %.1f ms, protocol %.0f ms)\n",
              static_cast<unsigned long long>(alice.stats.bytes_sent),
              static_cast<unsigned long long>(alice.stats.frames_sent),
              alice.timings.negotiation_seconds * 1e3,
              alice.timings.protocol_seconds * 1e3);

  // --- 4. Compare against the centralized baseline ------------------------
  // Per-party exactness: each party's labels partition its own records the
  // same way centralized DBSCAN on the POOLED data does (restricted to that
  // party's records). This is the paper's correctness claim for dense
  // clusters.
  DbscanResult central = RunDbscan(*encoded, options.params);
  Labels central_alice, central_bob;
  for (size_t id : split->alice_ids) central_alice.push_back(
      central.labels[id]);
  for (size_t id : split->bob_ids) central_bob.push_back(central.labels[id]);
  std::printf("\nCentralized DBSCAN on the pooled data finds %zu "
              "cluster(s).\n", central.num_clusters);
  std::printf("ARI(Alice's labels, centralized restricted to Alice) = %.3f\n",
              AdjustedRandIndex(alice.clustering.labels, central_alice));
  std::printf("ARI(Bob's   labels, centralized restricted to Bob)   = %.3f\n",
              AdjustedRandIndex(bob.clustering.labels, central_bob));

  // The two parties' cluster ids live in separate spaces. The E7 merge
  // extension links them into one joint space; with it, the combined
  // labels reproduce centralized DBSCAN exactly.
  options.cross_party_merge = true;
  Result<std::vector<RunOutcome>> merged = ExecuteLocal(
      {{ClusteringJob::Horizontal(split->alice, PartyRole::kAlice, options),
        /*seed=*/0x0a11ce},
       {ClusteringJob::Horizontal(split->bob, PartyRole::kBob, options),
        /*seed=*/0x0b0b}},
      smc);
  if (!merged.ok()) {
    std::fprintf(stderr, "merge run: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  Labels combined(encoded->size(), kUnclassified);
  for (size_t i = 0; i < split->alice_ids.size(); ++i) {
    combined[split->alice_ids[i]] = (*merged)[0].clustering.labels[i];
  }
  for (size_t i = 0; i < split->bob_ids.size(); ++i) {
    combined[split->bob_ids[i]] = (*merged)[1].clustering.labels[i];
  }
  std::printf("With the cross-party merge extension: %zu joint cluster(s), "
              "ARI vs centralized = %.3f\n",
              (*merged)[0].clustering.num_clusters,
              AdjustedRandIndex(combined, central.labels));
  std::printf("ARI(joint labels, generator truth) = %.3f\n",
              AdjustedRandIndex(
                  combined, Labels(raw.true_labels.begin(),
                                   raw.true_labels.end())));
  std::printf("\nEach party learned its own labels plus only the per-query "
              "neighbour counts\npermitted by Theorem 9 — run "
              "examples/hospital_records for the enhanced protocol\nthat "
              "hides even those.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
